//! The NDN forwarding pipeline (the paper's Fig. 1).
//!
//! The [`Forwarder`] is sans-IO: callers feed it packets with the face they
//! arrived on and apply the returned [`Action`]s (send a packet out a face).
//! Host integration — mapping [`crate::face::FaceId::WIRELESS`] to simulator
//! frames and [`crate::face::FaceId::APP`] to application callbacks — lives
//! with the protocol stacks.
//!
//! Pipeline for an incoming Interest:
//!
//! 1. **CS lookup** — a cached Data packet satisfies the Interest directly.
//! 2. **PIT lookup** — a duplicate nonce is dropped; a same-name pending
//!    Interest is aggregated (no forwarding).
//! 3. **FIB LPM + strategy** — otherwise the [`Strategy`] chooses the egress
//!    faces (or suppresses), which is where DAPES's §V forwarding /
//!    suppression logic plugs in.
//!
//! Incoming Data consumes matching PIT entries and flows to their
//! downstreams; unsolicited Data is cached when the forwarder is configured
//! as an overhearing "pure forwarder" (§V-A).

use crate::cs::{ContentStore, CsBudget, EvictionPolicyKind};
use crate::face::FaceId;
use crate::fib::Fib;
use crate::name::{wire_value_is_well_formed, Name};
use crate::packet::{whole_buffer_is_one_packet, Data, Interest, InterestHeader, PeekedHopLimit};
use crate::pit::{Pit, PitInsert};
use dapes_netsim::payload::Payload;
use dapes_netsim::time::{SimDuration, SimTime};

/// An output the caller must perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Send an Interest out a face.
    SendInterest {
        /// Egress face.
        face: FaceId,
        /// The Interest to send.
        interest: Interest,
    },
    /// Send a Data packet out a face.
    SendData {
        /// Egress face.
        face: FaceId,
        /// The Data to send.
        data: Data,
    },
    /// Relay a raw Interest frame out a face without ever constructing an
    /// [`Interest`]: `frame` is the received buffer with its hop-limit byte
    /// already patched (copy-on-write), byte-identical to what the eager
    /// pipeline would re-broadcast. `name` and `nonce` accompany it for the
    /// caller's pending-transmission bookkeeping (cancel-on-data,
    /// cancel-on-nonce, forwarding notes).
    RelayInterest {
        /// Egress face.
        face: FaceId,
        /// The patched wire image, ready for the radio.
        frame: Payload,
        /// The Interest name (zero-copy views into the received frame).
        name: Name,
        /// The Interest nonce.
        nonce: u32,
    },
}

/// A forwarding decision from a [`Strategy`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Forward out these faces.
    Forward(Vec<FaceId>),
    /// Do not forward (DAPES suppression).
    Suppress,
}

/// Chooses egress faces for Interests that need forwarding.
///
/// `Send` so forwarders can live inside stacks driven by the sharded
/// multi-core engine; strategies hold only per-node state.
pub trait Strategy: Send {
    /// Decides forwarding for `interest` arriving on `ingress`, given the
    /// FIB's `nexthops` (already excluding `ingress`).
    fn decide(
        &mut self,
        interest: &Interest,
        ingress: FaceId,
        nexthops: &[FaceId],
        now: SimTime,
    ) -> Decision;

    /// Header-only decision for an Interest whose FIB lookup produced no
    /// usable next hops, used by the overhearing fast path
    /// ([`Forwarder::process_interest_header`]) to drop not-for-me frames
    /// without a full decode. Implementations must return exactly what
    /// [`Strategy::decide`] would return for an empty `nexthops` slice
    /// without observing the Interest, or `None` (the default) to force the
    /// full pipeline when that decision depends on the Interest's payload
    /// or would mutate strategy state.
    fn decide_no_nexthops(&mut self, _ingress: FaceId, _now: SimTime) -> Option<Decision> {
        None
    }

    /// Header-only decision for a would-be-new Interest *with* usable next
    /// hops — the decode-free relay path. `name` is the Interest name,
    /// materialized from the peeked header. Implementations must either
    /// return exactly what [`Strategy::decide`] would for this Interest,
    /// consuming identical strategy state (including any RNG draws, in the
    /// same order), or return `None` *before mutating any state* when the
    /// decision depends on the Interest's payload — the caller then decodes
    /// and runs the full pipeline, which must observe the strategy exactly
    /// as [`Strategy::decide`] would have found it.
    fn decide_header(
        &mut self,
        _name: &Name,
        _ingress: FaceId,
        _nexthops: &[FaceId],
        _now: SimTime,
    ) -> Option<Decision> {
        None
    }
}

/// The default NDN multicast behaviour: forward to every FIB next hop.
#[derive(Clone, Copy, Debug, Default)]
pub struct BroadcastStrategy;

impl Strategy for BroadcastStrategy {
    fn decide(
        &mut self,
        _interest: &Interest,
        _ingress: FaceId,
        nexthops: &[FaceId],
        _now: SimTime,
    ) -> Decision {
        if nexthops.is_empty() {
            Decision::Suppress
        } else {
            Decision::Forward(nexthops.to_vec())
        }
    }

    fn decide_no_nexthops(&mut self, _ingress: FaceId, _now: SimTime) -> Option<Decision> {
        Some(Decision::Suppress)
    }

    fn decide_header(
        &mut self,
        _name: &Name,
        _ingress: FaceId,
        nexthops: &[FaceId],
        _now: SimTime,
    ) -> Option<Decision> {
        // The broadcast decision never looks at the Interest at all.
        Some(if nexthops.is_empty() {
            Decision::Suppress
        } else {
            Decision::Forward(nexthops.to_vec())
        })
    }
}

/// How [`Forwarder::process_interest_header`] resolved an overheard frame,
/// for per-outcome accounting (the peer-level stats distinguish FIB drops
/// from Content Store hits and duplicate nonces).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeekOutcome {
    /// Exact-name Content Store hit served from the wire index.
    CsHit,
    /// CanBePrefix Content Store hit served from the ordered wire index.
    CsPrefixHit,
    /// Duplicate nonce dropped.
    DuplicateNonce,
    /// No usable FIB route: the PIT entry was recorded and forwarding
    /// suppressed, all from the peeked header.
    FibNoRoute,
    /// A would-be-new Interest the strategy chose to forward: the PIT entry
    /// was recorded and the frame relayed by copy-on-write hop-limit patch
    /// — no `Interest` was ever constructed. (Also returned when the patch
    /// found the hop limit exhausted: the entry and forwarding stats commit
    /// exactly as in the full pipeline, which sends nothing either.)
    Relayed,
    /// A would-be-new Interest the strategy suppressed, resolved entirely
    /// from the peeked header (PIT entry recorded, nothing sent).
    RelaySuppressed,
}

/// Forwarder configuration.
#[derive(Clone, Debug)]
pub struct ForwarderConfig {
    /// Content Store capacity in packets, used when no byte budget is
    /// set (and always on the legacy tables, which predate byte budgets).
    pub cs_capacity: usize,
    /// Content Store memory budget in bytes (wire-size accounted). When
    /// set, it replaces the packet-count cap on the wire-arena tables;
    /// `None` keeps the historical count-capped store bit-identical.
    pub cs_budget_bytes: Option<usize>,
    /// Content Store eviction policy. The default, FIFO, is the
    /// trace-equivalence baseline; the legacy tables are always FIFO
    /// regardless of this knob.
    pub cs_policy: EvictionPolicyKind,
    /// Cache Data that matched no PIT entry (pure-forwarder overhearing).
    pub cache_unsolicited: bool,
    /// Faces on which Data may be sent back out the face it arrived on.
    /// Point-to-point NDN never does this, but over a shared broadcast
    /// face it is exactly how multi-hop Data returns: an intermediate node
    /// whose PIT records the broadcast face as downstream must re-broadcast
    /// the Data so the original requester (another hop away) receives it.
    pub rebroadcast_faces: Vec<FaceId>,
    /// Faces (typically the local application) that still receive an
    /// Interest when it aggregates into an existing PIT entry. Aggregation
    /// suppresses *network* re-forwarding, but a producer application must
    /// see every distinct probe — ndn-cxx InterestFilter semantics. Without
    /// this, a peer's own pending `/dapes/discovery` beacon would swallow
    /// all neighbor probes for the shared discovery name.
    pub deliver_on_aggregate: Vec<FaceId>,
    /// Resolve the *forward* outcome on the peek path too: when a peeked
    /// would-be-new Interest has a usable wireless route and the strategy
    /// can decide from the name alone, record the PIT entry and relay the
    /// received frame with its hop-limit byte patched copy-on-write
    /// ([`Action::RelayInterest`]) — never constructing an [`Interest`].
    /// Behaviour is bit-identical either way; off forces the full-decode
    /// forward path.
    pub relay_patch: bool,
    /// Run the PIT and Content Store on their legacy (pre-arena,
    /// `Name`-keyed) table generation instead of the wire-indexed slab
    /// arenas. Observable behaviour is identical; only the cost model
    /// changes. The scheduler benchmark's eager baseline modes enable
    /// this so the speedup they anchor keeps pricing the control plane
    /// the wire-arena tables replaced.
    pub legacy_tables: bool,
}

impl Default for ForwarderConfig {
    fn default() -> Self {
        ForwarderConfig {
            cs_capacity: 4096,
            cs_budget_bytes: None,
            cs_policy: EvictionPolicyKind::Fifo,
            cache_unsolicited: false,
            rebroadcast_faces: Vec::new(),
            deliver_on_aggregate: Vec::new(),
            relay_patch: true,
            legacy_tables: false,
        }
    }
}

/// Statistics the forwarder keeps about its own decisions.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForwarderStats {
    /// Interests answered from the Content Store.
    pub cs_hits: u64,
    /// Interests that created a new PIT entry and were forwarded.
    pub forwarded_interests: u64,
    /// Interests aggregated onto an existing PIT entry.
    pub aggregated_interests: u64,
    /// Interests dropped as duplicate nonces.
    pub duplicate_interests: u64,
    /// Interests the strategy suppressed.
    pub suppressed_interests: u64,
    /// Data packets that satisfied pending Interests.
    pub satisfied_data: u64,
    /// Data packets that arrived unsolicited.
    pub unsolicited_data: u64,
}

/// The NDN forwarding daemon for one node.
pub struct Forwarder {
    cs: ContentStore,
    pit: Pit,
    fib: Fib,
    cfg: ForwarderConfig,
    strategy: Box<dyn Strategy>,
    stats: ForwarderStats,
}

impl std::fmt::Debug for Forwarder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Forwarder")
            .field("cs_len", &self.cs.len())
            .field("pit_len", &self.pit.len())
            .field("fib_len", &self.fib.len())
            .finish()
    }
}

impl Forwarder {
    /// Creates a forwarder with the default broadcast strategy.
    pub fn new(cfg: ForwarderConfig) -> Self {
        Self::with_strategy(cfg, Box::new(BroadcastStrategy))
    }

    /// Creates a forwarder with a custom strategy (DAPES multi-hop logic).
    pub fn with_strategy(cfg: ForwarderConfig, strategy: Box<dyn Strategy>) -> Self {
        let (cs, pit) = if cfg.legacy_tables {
            (ContentStore::legacy(cfg.cs_capacity), Pit::legacy())
        } else {
            let budget = match cfg.cs_budget_bytes {
                Some(bytes) => CsBudget::Bytes(bytes),
                None => CsBudget::Count(cfg.cs_capacity),
            };
            (ContentStore::with_budget(budget, cfg.cs_policy), Pit::new())
        };
        Forwarder {
            cs,
            pit,
            fib: Fib::new(),
            cfg,
            strategy,
            stats: ForwarderStats::default(),
        }
    }

    /// The FIB, for prefix registration.
    pub fn fib_mut(&mut self) -> &mut Fib {
        &mut self.fib
    }

    /// The Content Store (read access).
    pub fn cs(&self) -> &ContentStore {
        &self.cs
    }

    /// Mutable Content Store access (producers pre-populate their packets).
    pub fn cs_mut(&mut self) -> &mut ContentStore {
        &mut self.cs
    }

    /// The PIT (read access).
    pub fn pit(&self) -> &Pit {
        &self.pit
    }

    /// Decision statistics.
    pub fn stats(&self) -> &ForwarderStats {
        &self.stats
    }

    /// Approximate bytes of forwarder state (CS + PIT + FIB), the Table I
    /// memory proxy.
    pub fn state_bytes(&self) -> usize {
        self.cs.state_bytes() + self.pit.state_bytes() + self.fib.state_bytes()
    }

    /// Attempts to resolve an Interest from its peeked header alone —
    /// borrowed name bytes, flags, nonce, lifetime; no full decode — running
    /// the prefix of the Fig. 1 pipeline that needs no payload:
    ///
    /// 1. **CS lookup** — an exact hit resolves through the wire index, and
    ///    a CanBePrefix hit through the *ordered* wire index (same range
    ///    walk, same first match), exactly as
    ///    [`Forwarder::process_interest`] would;
    /// 2. **duplicate nonce** — a loop/duplicate is dropped (empty action
    ///    list);
    /// 3. **FIB no-route** — a would-be-new Interest whose wire-level
    ///    longest-prefix match yields no usable next hop (and whose
    ///    strategy suppresses on empty next hops, see
    ///    [`Strategy::decide_no_nexthops`]) records its PIT entry — the
    ///    name materialized as zero-copy views of `backing`, the expiry
    ///    from the peeked lifetime — bumps the suppression counter, and
    ///    returns no actions: the not-for-me drop, byte-identical to the
    ///    full pipeline's outcome;
    /// 4. **decode-free relay** (with [`ForwarderConfig::relay_patch`] on) —
    ///    a would-be-new Interest with a usable wireless route whose
    ///    strategy can decide from the name alone records its PIT entry and,
    ///    on Forward, relays the received frame with its hop-limit byte
    ///    patched copy-on-write ([`Action::RelayInterest`]) — no `Interest`
    ///    is ever constructed, and the relayed bytes are identical to what
    ///    the eager decode→decrement→re-encode path would send.
    ///
    /// Returns `None` when the Interest still needs the full pipeline — PIT
    /// aggregation, a payload-dependent strategy decision, or a forward the
    /// relay path's preconditions exclude. The caller must then decode and
    /// call [`Forwarder::process_interest`]; no state or statistics change
    /// on fall-through, so there is no double counting. A malformed name
    /// region also falls through: the full decode fails at the same byte,
    /// so the frame is dropped either way.
    pub fn process_interest_header(
        &mut self,
        now: SimTime,
        header: &InterestHeader<'_>,
        backing: &Payload,
        ingress: FaceId,
    ) -> Option<(Vec<Action>, PeekOutcome)> {
        if header.can_be_prefix {
            // The ordered prefix walk may only run on a *complete* region:
            // a truncated one could byte-prefix-match a cached name the
            // full decode would never see.
            if !wire_value_is_well_formed(header.name_wire) {
                return None;
            }
            if let Some(data) =
                self.cs
                    .lookup_wire_prefix(header.name_wire, header.must_be_fresh, now)
            {
                self.stats.cs_hits += 1;
                return Some((
                    vec![Action::SendData {
                        face: ingress,
                        data: data.clone(),
                    }],
                    PeekOutcome::CsPrefixHit,
                ));
            }
        } else if let Some(data) =
            self.cs
                .lookup_wire_exact(header.name_wire, header.must_be_fresh, now)
        {
            self.stats.cs_hits += 1;
            return Some((
                vec![Action::SendData {
                    face: ingress,
                    data: data.clone(),
                }],
                PeekOutcome::CsHit,
            ));
        }
        // One hash probe answers both the duplicate-nonce and the
        // would-be-new question.
        match self.pit.probe_wire(header.name_wire) {
            Some(probe) if probe.nonces.contains(&header.nonce) => {
                self.stats.duplicate_interests += 1;
                return Some((Vec::new(), PeekOutcome::DuplicateNonce));
            }
            // Aggregation: the full pipeline handles it.
            Some(_) => return None,
            None => {}
        }
        // Would be `PitInsert::New`: probe the FIB at the wire level,
        // filtering exactly as the full pipeline does. The usable set is
        // collected into a stack buffer — this runs once per would-be-new
        // Interest, and next-hop sets are tiny. A FIB entry wider than the
        // buffer falls through to the full pipeline (always allowed).
        let nexthops = self.fib.longest_prefix_match_wire(header.name_wire)?;
        let mut usable_buf = [FaceId::WIRELESS; 8];
        let mut usable_len = 0usize;
        for &f in nexthops {
            if f != ingress || self.cfg.rebroadcast_faces.contains(&f) {
                if usable_len == usable_buf.len() {
                    return None;
                }
                usable_buf[usable_len] = f;
                usable_len += 1;
            }
        }
        let usable = &usable_buf[..usable_len];
        if usable.is_empty() {
            if self.strategy.decide_no_nexthops(ingress, now) != Some(Decision::Suppress) {
                return None;
            }
            // Committed: reproduce the full pipeline's PIT insert. The
            // name is materialized only here, as zero-copy views into
            // the frame — the *decision* needed no `Name` at all.
            let name = header.to_name(backing).ok()?;
            let expiry = now + SimDuration::from_millis(header.lifetime_ms);
            self.pit.insert_new_peeked(
                name,
                header.name_wire,
                header.nonce,
                header.can_be_prefix,
                ingress,
                expiry,
            );
            self.stats.suppressed_interests += 1;
            return Some((Vec::new(), PeekOutcome::FibNoRoute));
        }
        if self.cfg.relay_patch {
            return self.relay_from_header(now, header, backing, ingress, usable);
        }
        None
    }

    /// The decode-free relay: resolves the *forward* outcome of a peeked
    /// would-be-new Interest with usable next hops. Every fall-through
    /// (`None`) happens before any strategy state is touched, so the full
    /// pipeline replays from an identical starting point.
    fn relay_from_header(
        &mut self,
        now: SimTime,
        header: &InterestHeader<'_>,
        backing: &Payload,
        ingress: FaceId,
        usable: &[FaceId],
    ) -> Option<(Vec<Action>, PeekOutcome)> {
        // Preconditions, all checked before the strategy (and its RNG) runs:
        //
        // * The frame must be exactly one packet — it becomes the relayed
        //   wire image, and the eager path only seeds its encode-once cache
        //   (i.e. re-broadcasts these very bytes) under the same condition.
        // * The hop limit must be absent or canonically encoded: patching a
        //   multi-byte encoding would not match decode→decrement→encode.
        // * A patchable hop limit relays to at most one face — the eager
        //   path decrements once *per egress action*, sending a different
        //   hop count to each; more than one face falls back to it.
        // * Every usable face must be wireless: an APP next hop delivers to
        //   the application, which needs the decoded Interest.
        if !whole_buffer_is_one_packet(backing) {
            return None;
        }
        match header.hop_limit {
            PeekedHopLimit::Opaque => return None,
            PeekedHopLimit::Patchable { .. } if usable.len() > 1 => return None,
            _ => {}
        }
        if usable.iter().any(|&f| f != FaceId::WIRELESS) {
            return None;
        }
        // A malformed name region falls through; the full decode fails at
        // the same byte, so the frame is dropped either way.
        let name = header.to_name(backing).ok()?;
        let decision = self.strategy.decide_header(&name, ingress, usable, now)?;

        // Committed: reproduce the full pipeline's PIT insert and stats.
        // `insert_new_peeked` reuses the frame's own name bytes for the
        // wire index and hands the entry back, so the forward arm stamps
        // `last_forward` without re-probing.
        let expiry = now + SimDuration::from_millis(header.lifetime_ms);
        let entry = self.pit.insert_new_peeked(
            name,
            header.name_wire,
            header.nonce,
            header.can_be_prefix,
            ingress,
            expiry,
        );
        match decision {
            Decision::Suppress => {
                self.stats.suppressed_interests += 1;
                Some((Vec::new(), PeekOutcome::RelaySuppressed))
            }
            Decision::Forward(faces) => {
                self.stats.forwarded_interests += 1;
                entry.last_forward = Some(now);
                let frame = match header.hop_limit {
                    PeekedHopLimit::Absent => backing.clone(),
                    PeekedHopLimit::Patchable { value, .. } if value <= 1 => {
                        // Hop limit exhausted: the eager path commits the
                        // PIT entry and forwarding stats, then sends
                        // nothing (`decrement_hop_limit` returns false).
                        return Some((Vec::new(), PeekOutcome::Relayed));
                    }
                    PeekedHopLimit::Patchable { value, offset } => {
                        // The copy-on-write patch: one buffer copy, one
                        // byte rewritten — byte-identical to the eager
                        // path's decode→decrement→encode (which patches
                        // its seeded wire cache the same way).
                        let mut bytes = backing.as_slice().to_vec();
                        bytes[offset] = value - 1;
                        Payload::from(bytes)
                    }
                    PeekedHopLimit::Opaque => unreachable!("checked before committing"),
                };
                // The entry owns the materialized name; each action needs
                // its own copy, and the last one takes the working clone —
                // the common single-face relay clones exactly once.
                let mut relay_name = Some(entry.name.clone());
                let mut egress = faces
                    .into_iter()
                    .filter(|&f| f != ingress || self.cfg.rebroadcast_faces.contains(&f))
                    .peekable();
                let mut actions = Vec::with_capacity(1);
                while let Some(face) = egress.next() {
                    let name = if egress.peek().is_none() {
                        relay_name.take().expect("taken once, by the last face")
                    } else {
                        relay_name.clone().expect("taken once, by the last face")
                    };
                    actions.push(Action::RelayInterest {
                        face,
                        frame: frame.clone(),
                        name,
                        nonce: header.nonce,
                    });
                }
                Some((actions, PeekOutcome::Relayed))
            }
        }
    }

    /// Attempts to resolve an overheard Data packet from its peeked name
    /// bytes alone. Returns `true` — counting it as unsolicited, exactly as
    /// [`Forwarder::process_data`] would — when the Data matches no PIT
    /// entry and this forwarder does not cache unsolicited packets, i.e.
    /// when the full pipeline would take no action and need no decode.
    /// Returns `false` (with nothing counted) when the caller must decode
    /// and run [`Forwarder::process_data`].
    pub fn process_data_header(&mut self, name_wire: &[u8]) -> bool {
        if self.cfg.cache_unsolicited || self.pit.matches_wire(name_wire) {
            return false;
        }
        self.stats.unsolicited_data += 1;
        true
    }

    /// Processes an incoming Interest per the Fig. 1 pipeline.
    pub fn process_interest(
        &mut self,
        now: SimTime,
        interest: &Interest,
        ingress: FaceId,
    ) -> Vec<Action> {
        // Encode the name once; the CS probe and the PIT insert both key on
        // the canonical wire value. The legacy table generation keys on the
        // `Name` itself, so it skips the encode and pays its own tree-walk
        // costs instead — exactly the pre-refactor pipeline.
        let name_wire = (!self.cfg.legacy_tables).then(|| interest.name().to_wire_value());

        // 1. Content Store.
        let cs_hit = match &name_wire {
            Some(wire) if interest.can_be_prefix() => {
                self.cs
                    .lookup_wire_prefix(wire, interest.must_be_fresh(), now)
            }
            Some(wire) => self
                .cs
                .lookup_wire_exact(wire, interest.must_be_fresh(), now),
            None => self.cs.lookup(
                interest.name(),
                interest.can_be_prefix(),
                interest.must_be_fresh(),
                now,
            ),
        };
        if let Some(data) = cs_hit {
            self.stats.cs_hits += 1;
            return vec![Action::SendData {
                face: ingress,
                data: data.clone(),
            }];
        }

        // 2. PIT.
        let expiry = now + SimDuration::from_millis(interest.lifetime_ms());
        let inserted = match &name_wire {
            Some(wire) => self.pit.insert_wired(
                interest.name(),
                wire,
                interest.nonce(),
                interest.can_be_prefix(),
                ingress,
                expiry,
            ),
            None => self.pit.insert(
                interest.name(),
                interest.nonce(),
                interest.can_be_prefix(),
                ingress,
                expiry,
            ),
        };
        match inserted {
            PitInsert::DuplicateNonce => {
                self.stats.duplicate_interests += 1;
                Vec::new()
            }
            PitInsert::Aggregated => {
                self.stats.aggregated_interests += 1;
                let mut actions: Vec<Action> = self
                    .fib
                    .longest_prefix_match(interest.name())
                    .iter()
                    .copied()
                    .filter(|f| *f != ingress && self.cfg.deliver_on_aggregate.contains(f))
                    .map(|face| Action::SendInterest {
                        face,
                        interest: interest.clone(),
                    })
                    .collect();
                // Consumer retransmission: a new nonce for a still-pending
                // name re-forwards upstream once the suppression interval
                // elapsed (NFD strategies behave the same way) — without
                // this, one lost Data on a multi-hop path would stall the
                // transfer for the whole Interest lifetime.
                let retx_ok =
                    self.pit
                        .entry_mut(interest.name())
                        .is_some_and(|e| match e.last_forward {
                            None => true,
                            Some(t) => now.since(t) >= SimDuration::from_millis(200),
                        });
                if retx_ok {
                    let nexthops: Vec<FaceId> = self
                        .fib
                        .longest_prefix_match(interest.name())
                        .iter()
                        .copied()
                        .filter(|&f| f != ingress || self.cfg.rebroadcast_faces.contains(&f))
                        .collect();
                    if let Decision::Forward(faces) =
                        self.strategy.decide(interest, ingress, &nexthops, now)
                    {
                        let mut forwarded = false;
                        for face in faces {
                            let allowed =
                                face != ingress || self.cfg.rebroadcast_faces.contains(&face);
                            if allowed && !self.cfg.deliver_on_aggregate.contains(&face) {
                                forwarded = true;
                                actions.push(Action::SendInterest {
                                    face,
                                    interest: interest.clone(),
                                });
                            }
                        }
                        if forwarded {
                            if let Some(e) = self.pit.entry_mut(interest.name()) {
                                e.last_forward = Some(now);
                            }
                        }
                    }
                }
                actions
            }
            PitInsert::New => {
                // 3. FIB + strategy. The ingress face stays a candidate
                // when it is a broadcast face: re-broadcasting out the same
                // radio is exactly what multi-hop Interest relay means.
                let nexthops: Vec<FaceId> = self
                    .fib
                    .longest_prefix_match(interest.name())
                    .iter()
                    .copied()
                    .filter(|&f| f != ingress || self.cfg.rebroadcast_faces.contains(&f))
                    .collect();
                match self.strategy.decide(interest, ingress, &nexthops, now) {
                    Decision::Suppress => {
                        self.stats.suppressed_interests += 1;
                        Vec::new()
                    }
                    Decision::Forward(faces) => {
                        self.stats.forwarded_interests += 1;
                        if let Some(e) = self.pit.entry_mut(interest.name()) {
                            e.last_forward = Some(now);
                        }
                        faces
                            .into_iter()
                            .filter(|&f| f != ingress || self.cfg.rebroadcast_faces.contains(&f))
                            .map(|face| Action::SendInterest {
                                face,
                                interest: interest.clone(),
                            })
                            .collect()
                    }
                }
            }
        }
    }

    /// Processes an incoming Data packet. Returns the actions plus whether
    /// the packet was solicited (matched a PIT entry).
    pub fn process_data(
        &mut self,
        now: SimTime,
        data: &Data,
        ingress: FaceId,
    ) -> (Vec<Action>, bool) {
        let matched = self.pit.take_matching(data.name());
        if matched.is_empty() {
            self.stats.unsolicited_data += 1;
            if self.cfg.cache_unsolicited {
                self.cs.insert(data.clone(), now);
            }
            return (Vec::new(), false);
        }
        self.stats.satisfied_data += 1;
        self.cs.insert(data.clone(), now);
        let mut actions = Vec::new();
        for entry in matched {
            for face in entry.downstreams {
                if face != ingress || self.cfg.rebroadcast_faces.contains(&face) {
                    actions.push(Action::SendData {
                        face,
                        data: data.clone(),
                    });
                }
            }
        }
        (actions, true)
    }

    /// Expires stale PIT entries, returning their names (used by DAPES pure
    /// forwarders to arm suppression timers, §V-A).
    pub fn expire(&mut self, now: SimTime) -> Vec<Name> {
        self.pit.expire(now)
    }

    /// The soonest PIT expiry, to drive a cleanup timer.
    pub fn next_pit_expiry(&self) -> Option<SimTime> {
        self.pit.next_expiry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd() -> Forwarder {
        let mut f = Forwarder::new(ForwarderConfig::default());
        // App owns /app, everything else goes to the air.
        f.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
        f.fib_mut().register(Name::from_uri("/app"), FaceId::APP);
        f
    }

    fn interest(uri: &str, nonce: u32) -> Interest {
        Interest::new(Name::from_uri(uri)).with_nonce(nonce)
    }

    fn data(uri: &str) -> Data {
        Data::new(Name::from_uri(uri), vec![7; 8])
    }

    fn now() -> SimTime {
        SimTime::from_secs(1)
    }

    #[test]
    fn interest_forwards_via_fib() {
        let mut f = fwd();
        let actions = f.process_interest(now(), &interest("/col/f/0", 1), FaceId::APP);
        assert_eq!(
            actions,
            vec![Action::SendInterest {
                face: FaceId::WIRELESS,
                interest: interest("/col/f/0", 1)
            }]
        );
        assert_eq!(f.stats().forwarded_interests, 1);
    }

    #[test]
    fn interest_for_app_prefix_goes_to_app() {
        let mut f = fwd();
        let actions = f.process_interest(now(), &interest("/app/x", 1), FaceId::WIRELESS);
        assert_eq!(
            actions,
            vec![Action::SendInterest {
                face: FaceId::APP,
                interest: interest("/app/x", 1)
            }]
        );
    }

    #[test]
    fn cs_hit_short_circuits() {
        let mut f = fwd();
        f.cs_mut().insert(data("/col/f/0"), now());
        let actions = f.process_interest(now(), &interest("/col/f/0", 1), FaceId::WIRELESS);
        assert_eq!(
            actions,
            vec![Action::SendData {
                face: FaceId::WIRELESS,
                data: data("/col/f/0")
            }]
        );
        assert_eq!(f.stats().cs_hits, 1);
        assert!(f.pit().is_empty(), "no PIT entry on CS hit");
    }

    #[test]
    fn cs_prefix_hit_requires_can_be_prefix() {
        let mut f = fwd();
        f.cs_mut().insert(data("/col/f/0"), now());
        let miss = f.process_interest(now(), &interest("/col", 1), FaceId::APP);
        assert!(matches!(miss[0], Action::SendInterest { .. }));
        let hit = f.process_interest(
            now(),
            &interest("/col", 2).with_can_be_prefix(true),
            FaceId::APP,
        );
        assert!(matches!(hit[0], Action::SendData { .. }));
    }

    #[test]
    fn duplicate_nonce_dropped_aggregation_silent() {
        let mut f = fwd();
        f.process_interest(now(), &interest("/a", 1), FaceId::APP);
        // Same nonce from elsewhere: loop → drop.
        assert!(f
            .process_interest(now(), &interest("/a", 1), FaceId::WIRELESS)
            .is_empty());
        assert_eq!(f.stats().duplicate_interests, 1);
        // New nonce, same name: aggregate → no forward.
        assert!(f
            .process_interest(now(), &interest("/a", 2), FaceId::WIRELESS)
            .is_empty());
        assert_eq!(f.stats().aggregated_interests, 1);
    }

    #[test]
    fn data_follows_pit_back_to_all_downstreams() {
        let mut f = fwd();
        f.process_interest(now(), &interest("/a", 1), FaceId::APP);
        f.process_interest(now(), &interest("/a", 2), FaceId(9));
        let (actions, solicited) = f.process_data(now(), &data("/a"), FaceId::WIRELESS);
        assert!(solicited);
        let faces: Vec<FaceId> = actions
            .iter()
            .map(|a| match a {
                Action::SendData { face, .. } => *face,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(faces, vec![FaceId::APP, FaceId(9)]);
        // Satisfied data is cached.
        assert!(f.cs().lookup_exact(&Name::from_uri("/a")).is_some());
        assert!(f.pit().is_empty());
    }

    #[test]
    fn data_not_sent_back_to_its_ingress() {
        let mut f = fwd();
        f.process_interest(now(), &interest("/a", 1), FaceId::WIRELESS);
        let (actions, solicited) = f.process_data(now(), &data("/a"), FaceId::WIRELESS);
        assert!(solicited);
        assert!(actions.is_empty(), "sole downstream is the ingress face");
    }

    #[test]
    fn unsolicited_data_dropped_by_default_cached_by_pure_forwarder() {
        let mut f = fwd();
        let (actions, solicited) = f.process_data(now(), &data("/x"), FaceId::WIRELESS);
        assert!(!solicited);
        assert!(actions.is_empty());
        assert!(f.cs().lookup_exact(&Name::from_uri("/x")).is_none());
        assert_eq!(f.stats().unsolicited_data, 1);

        let mut pf = Forwarder::new(ForwarderConfig {
            cache_unsolicited: true,
            ..ForwarderConfig::default()
        });
        pf.process_data(now(), &data("/x"), FaceId::WIRELESS);
        assert!(pf.cs().lookup_exact(&Name::from_uri("/x")).is_some());
    }

    #[test]
    fn suppressing_strategy_blocks_forwarding() {
        struct Never;
        impl Strategy for Never {
            fn decide(&mut self, _: &Interest, _: FaceId, _: &[FaceId], _: SimTime) -> Decision {
                Decision::Suppress
            }
        }
        let mut f = Forwarder::with_strategy(ForwarderConfig::default(), Box::new(Never));
        f.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
        assert!(f
            .process_interest(now(), &interest("/a", 1), FaceId::APP)
            .is_empty());
        assert_eq!(f.stats().suppressed_interests, 1);
        // PIT entry still exists: data flowing past later is delivered.
        assert!(f.pit().contains(&Name::from_uri("/a")));
    }

    #[test]
    fn strategy_cannot_forward_back_to_ingress() {
        struct Echo;
        impl Strategy for Echo {
            fn decide(
                &mut self,
                _: &Interest,
                ingress: FaceId,
                _: &[FaceId],
                _: SimTime,
            ) -> Decision {
                Decision::Forward(vec![ingress])
            }
        }
        let mut f = Forwarder::with_strategy(ForwarderConfig::default(), Box::new(Echo));
        f.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
        assert!(f
            .process_interest(now(), &interest("/a", 1), FaceId::WIRELESS)
            .is_empty());
    }

    #[test]
    fn rebroadcast_face_relays_data_back_out() {
        // An intermediate node that forwarded an Interest heard on the
        // broadcast face must re-broadcast the returning Data.
        let mut f = Forwarder::new(ForwarderConfig {
            rebroadcast_faces: vec![FaceId::WIRELESS],
            ..ForwarderConfig::default()
        });
        f.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
        f.process_interest(now(), &interest("/a", 1), FaceId::WIRELESS);
        let (actions, solicited) = f.process_data(now(), &data("/a"), FaceId::WIRELESS);
        assert!(solicited);
        assert_eq!(
            actions,
            vec![Action::SendData {
                face: FaceId::WIRELESS,
                data: data("/a")
            }]
        );
    }

    #[test]
    fn pit_expiry_reports_names() {
        let mut f = fwd();
        f.process_interest(
            now(),
            &interest("/a", 1).with_lifetime_ms(1000),
            FaceId::APP,
        );
        assert_eq!(f.next_pit_expiry(), Some(now() + SimDuration::from_secs(1)));
        let expired = f.expire(now() + SimDuration::from_secs(2));
        assert_eq!(expired, vec![Name::from_uri("/a")]);
        // Late data is now unsolicited.
        let (_, solicited) = f.process_data(now(), &data("/a"), FaceId::WIRELESS);
        assert!(!solicited);
    }

    #[test]
    fn no_fib_match_suppresses() {
        let mut f = Forwarder::new(ForwarderConfig::default());
        assert!(f
            .process_interest(now(), &interest("/a", 1), FaceId::APP)
            .is_empty());
        assert_eq!(f.stats().suppressed_interests, 1);
    }

    /// Peeks `i`'s header out of `wire` (which must outlive the header).
    fn header_of<'a>(wire: &'a dapes_netsim::payload::Payload) -> InterestHeader<'a> {
        use crate::packet::{Packet, PacketHeader};
        match Packet::peek_header(wire).expect("valid") {
            PacketHeader::Interest(h) => h,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn wire_of(i: &Interest) -> dapes_netsim::payload::Payload {
        dapes_netsim::payload::Payload::from(i.encode())
    }

    #[test]
    fn header_pipeline_matches_full_pipeline_on_cs_hit() {
        let mut eager = fwd();
        let mut lazy = fwd();
        eager.cs_mut().insert(data("/col/f/0"), now());
        lazy.cs_mut().insert(data("/col/f/0"), now());
        let i = interest("/col/f/0", 1);
        let want = eager.process_interest(now(), &i, FaceId::WIRELESS);
        let wire = wire_of(&i);
        let (got, outcome) = lazy
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .expect("CS hit resolves from the header");
        assert_eq!(got, want);
        assert_eq!(outcome, PeekOutcome::CsHit);
        assert_eq!(lazy.stats().cs_hits, eager.stats().cs_hits);
        assert!(lazy.pit().is_empty(), "no PIT entry on a header CS hit");
    }

    #[test]
    fn header_pipeline_matches_full_pipeline_on_prefix_cs_hit() {
        let mut eager = fwd();
        let mut lazy = fwd();
        eager.cs_mut().insert(data("/col/f/0"), now());
        lazy.cs_mut().insert(data("/col/f/0"), now());
        let i = interest("/col", 1).with_can_be_prefix(true);
        let want = eager.process_interest(now(), &i, FaceId::WIRELESS);
        let wire = wire_of(&i);
        let (got, outcome) = lazy
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .expect("CanBePrefix hit resolves through the ordered wire index");
        assert_eq!(got, want);
        assert_eq!(outcome, PeekOutcome::CsPrefixHit);
        assert_eq!(lazy.stats().cs_hits, eager.stats().cs_hits);
        assert!(lazy.pit().is_empty(), "no PIT entry on a header CS hit");

        // A CanBePrefix *miss* with a usable route resolves as a relay
        // (and falls through to the full pipeline with the patch off).
        let miss = interest("/other", 2).with_can_be_prefix(true);
        let wire = wire_of(&miss);
        let (_, outcome) = lazy
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::APP)
            .expect("CanBePrefix miss with a usable route relays");
        assert_eq!(outcome, PeekOutcome::Relayed);
    }

    #[test]
    fn header_pipeline_matches_full_pipeline_on_duplicate_nonce() {
        let mut eager = fwd();
        let mut lazy = fwd();
        let first = interest("/a", 7);
        eager.process_interest(now(), &first, FaceId::WIRELESS);
        lazy.process_interest(now(), &first, FaceId::WIRELESS);
        let dup = interest("/a", 7);
        let want = eager.process_interest(now(), &dup, FaceId::WIRELESS);
        let wire = wire_of(&dup);
        let (got, outcome) = lazy
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .expect("duplicate resolves from the header");
        assert_eq!(got, want);
        assert_eq!(outcome, PeekOutcome::DuplicateNonce);
        assert!(got.is_empty());
        assert_eq!(lazy.stats().duplicate_interests, 1);
    }

    #[test]
    fn header_pipeline_matches_full_pipeline_on_fib_no_route() {
        // No FIB entry covers "/nowhere": the full pipeline records a PIT
        // entry and suppresses; the header pipeline must do exactly that —
        // same entry, same expiry, same counter — without a full decode.
        let mut eager = Forwarder::new(ForwarderConfig::default());
        let mut lazy = Forwarder::new(ForwarderConfig::default());
        eager
            .fib_mut()
            .register(Name::from_uri("/app"), FaceId::APP);
        lazy.fib_mut().register(Name::from_uri("/app"), FaceId::APP);
        let i = interest("/nowhere/x", 5).with_lifetime_ms(1_234);
        let want = eager.process_interest(now(), &i, FaceId::WIRELESS);
        assert!(want.is_empty());
        let wire = wire_of(&i);
        let (got, outcome) = lazy
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .expect("no-route interest resolves from the header");
        assert_eq!(got, want);
        assert_eq!(outcome, PeekOutcome::FibNoRoute);
        assert_eq!(
            lazy.stats().suppressed_interests,
            eager.stats().suppressed_interests
        );
        assert!(
            lazy.pit().contains(&Name::from_uri("/nowhere/x")),
            "PIT entry recorded: data flowing past later is still delivered"
        );
        assert_eq!(lazy.next_pit_expiry(), eager.next_pit_expiry());
        // A nexthop that is only the non-rebroadcast ingress face counts as
        // no usable route too, matching the full pipeline's filter.
        let j = interest("/app/y", 6);
        let jw = wire_of(&j);
        let (acts, outcome) = lazy
            .process_interest_header(now(), &header_of(&jw), &jw, FaceId::APP)
            .expect("ingress-only route suppresses");
        assert!(acts.is_empty());
        assert_eq!(outcome, PeekOutcome::FibNoRoute);
    }

    #[test]
    fn header_pipeline_defers_aggregation_and_routable_new_entries() {
        // With the relay patch off, a new entry with a usable route must
        // take the full pipeline (the forwarded Interest carries payload
        // fields the header does not have).
        let mut f = Forwarder::new(ForwarderConfig {
            relay_patch: false,
            ..ForwarderConfig::default()
        });
        f.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
        f.fib_mut().register(Name::from_uri("/app"), FaceId::APP);
        let i = interest("/a", 1);
        let wire = wire_of(&i);
        assert!(f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::APP)
            .is_none());
        assert_eq!(
            f.stats().cs_hits + f.stats().duplicate_interests + f.stats().suppressed_interests,
            0,
            "fall-through must count nothing"
        );
        f.process_interest(now(), &i, FaceId::APP);
        // Same name, fresh nonce: aggregation also defers.
        let wire = wire_of(&interest("/a", 2));
        assert!(f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::APP)
            .is_none());
        // ...even when CanBePrefix is set and nothing is cached.
        let wire = wire_of(&interest("/a", 3).with_can_be_prefix(true));
        assert!(f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::APP)
            .is_none());
    }

    #[test]
    fn header_pipeline_with_rebroadcast_ingress_defers_instead_of_dropping() {
        // DAPES-style forwarders re-broadcast out the ingress radio: the
        // same overheard Interest that a point-to-point FIB would drop is a
        // usable-route case here and (with the relay patch off) must fall
        // through to the full pipeline.
        let mut f = Forwarder::new(ForwarderConfig {
            rebroadcast_faces: vec![FaceId::WIRELESS],
            relay_patch: false,
            ..ForwarderConfig::default()
        });
        f.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
        let i = interest("/a", 1);
        let wire = wire_of(&i);
        assert!(f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .is_none());
        assert!(f.pit().is_empty(), "fall-through must not touch the PIT");
    }

    fn relay_fwd() -> Forwarder {
        let mut f = Forwarder::new(ForwarderConfig {
            rebroadcast_faces: vec![FaceId::WIRELESS],
            ..ForwarderConfig::default()
        });
        f.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
        f
    }

    #[test]
    fn header_pipeline_relays_by_hop_limit_patch_without_decoding() {
        let mut f = relay_fwd();
        let i = interest("/a", 1).with_hop_limit(5);
        let wire = wire_of(&i);
        let (actions, outcome) = f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .expect("relay resolves from the header");
        assert_eq!(outcome, PeekOutcome::Relayed);
        let [Action::RelayInterest {
            face,
            frame,
            name,
            nonce,
        }] = &actions[..]
        else {
            panic!("expected one relay action, got {actions:?}");
        };
        assert_eq!(*face, FaceId::WIRELESS);
        assert_eq!(name, &Name::from_uri("/a"));
        assert_eq!(*nonce, 1);
        // The frame is the eager path's bytes exactly: decode, decrement,
        // re-encode.
        let mut eager = Interest::decode_payload(&wire).expect("decode");
        assert!(eager.decrement_hop_limit());
        assert_eq!(frame.as_slice(), &eager.wire()[..]);
        assert_eq!(
            Interest::decode(frame)
                .expect("patched frame decodes")
                .hop_limit(),
            Some(4)
        );
        // Full-pipeline side effects committed: PIT entry, stats, expiry.
        assert!(f.pit().contains(&Name::from_uri("/a")));
        assert!(f.pit().has_nonce(&Name::from_uri("/a"), 1));
        assert_eq!(f.stats().forwarded_interests, 1);

        // A hop-limit-free Interest relays the received buffer as-is.
        let j = interest("/b", 2);
        let jw = wire_of(&j);
        let (actions, outcome) = f
            .process_interest_header(now(), &header_of(&jw), &jw, FaceId::WIRELESS)
            .expect("relay resolves");
        assert_eq!(outcome, PeekOutcome::Relayed);
        let [Action::RelayInterest { frame, .. }] = &actions[..] else {
            panic!("expected one relay action");
        };
        assert!(
            Payload::ptr_eq(frame, &jw),
            "no hop limit: zero-copy relay of the received frame"
        );
    }

    #[test]
    fn header_pipeline_relay_commits_but_sends_nothing_on_exhausted_hops() {
        // `decrement_hop_limit` returning false in the eager path still
        // leaves the PIT entry and forwarding stats committed — only the
        // transmission is skipped.
        let mut f = relay_fwd();
        let i = interest("/a", 1).with_hop_limit(1);
        let wire = wire_of(&i);
        let (actions, outcome) = f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .expect("exhausted relay still resolves");
        assert!(actions.is_empty());
        assert_eq!(outcome, PeekOutcome::Relayed);
        assert!(f.pit().contains(&Name::from_uri("/a")));
        assert_eq!(f.stats().forwarded_interests, 1);
    }

    #[test]
    fn header_pipeline_relay_falls_through_on_unpatchable_frames() {
        // Non-wireless usable next hop: the application needs the decoded
        // Interest.
        let mut f = fwd();
        let i = interest("/app/x", 1);
        let wire = wire_of(&i);
        assert!(f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .is_none());
        assert!(f.pit().is_empty());

        // Non-canonical (multi-byte) hop limit: a byte patch would not
        // match a re-encode.
        let mut f = relay_fwd();
        let mut body = Vec::new();
        crate::packet::encode_name(&mut body, &Name::from_uri("/a"));
        crate::tlv::write_tlv(&mut body, crate::tlv::types::NONCE, &1u32.to_be_bytes());
        crate::tlv::write_tlv(&mut body, crate::tlv::types::HOP_LIMIT, &[3, 9]);
        let mut raw = Vec::new();
        crate::tlv::write_tlv(&mut raw, crate::tlv::types::INTEREST, &body);
        let wire = Payload::from(raw);
        assert!(f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .is_none());

        // Trailing bytes after the packet: the buffer is not this packet's
        // wire image, so it must not be relayed verbatim.
        let mut with_trailer = interest("/a", 1).encode();
        with_trailer.extend_from_slice(&[0x99, 0x00]);
        let wire = Payload::from(with_trailer);
        assert!(f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .is_none());
        assert!(f.pit().is_empty(), "fall-throughs must not touch the PIT");
    }

    #[test]
    fn header_pipeline_relay_respects_strategy_suppression() {
        struct NeverHeader;
        impl Strategy for NeverHeader {
            fn decide(&mut self, _: &Interest, _: FaceId, _: &[FaceId], _: SimTime) -> Decision {
                Decision::Suppress
            }
            fn decide_header(
                &mut self,
                _: &Name,
                _: FaceId,
                _: &[FaceId],
                _: SimTime,
            ) -> Option<Decision> {
                Some(Decision::Suppress)
            }
        }
        let mut f = Forwarder::with_strategy(
            ForwarderConfig {
                rebroadcast_faces: vec![FaceId::WIRELESS],
                ..ForwarderConfig::default()
            },
            Box::new(NeverHeader),
        );
        f.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
        let i = interest("/a", 1);
        let wire = wire_of(&i);
        let (actions, outcome) = f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .expect("suppression resolves from the header");
        assert!(actions.is_empty());
        assert_eq!(outcome, PeekOutcome::RelaySuppressed);
        assert_eq!(f.stats().suppressed_interests, 1);
        assert!(
            f.pit().contains(&Name::from_uri("/a")),
            "suppressed Interests still record PIT state"
        );
    }

    #[test]
    fn header_pipeline_relay_defers_when_strategy_needs_the_payload() {
        // The default `decide_header` returns None: strategies that inspect
        // application parameters keep the full pipeline.
        struct PayloadBound;
        impl Strategy for PayloadBound {
            fn decide(&mut self, _: &Interest, _: FaceId, n: &[FaceId], _: SimTime) -> Decision {
                Decision::Forward(n.to_vec())
            }
        }
        let mut f = Forwarder::with_strategy(
            ForwarderConfig {
                rebroadcast_faces: vec![FaceId::WIRELESS],
                ..ForwarderConfig::default()
            },
            Box::new(PayloadBound),
        );
        f.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
        let i = interest("/a", 1).with_hop_limit(5);
        let wire = wire_of(&i);
        assert!(f
            .process_interest_header(now(), &header_of(&wire), &wire, FaceId::WIRELESS)
            .is_none());
        assert!(f.pit().is_empty(), "fall-through must not touch the PIT");
        assert_eq!(f.stats().forwarded_interests, 0);
    }

    #[test]
    fn data_header_resolves_only_unsolicited_non_caching() {
        let mut f = fwd();
        f.process_interest(now(), &interest("/a", 1), FaceId::APP);
        let key = |uri: &str| Name::from_uri(uri).to_wire_value();
        assert!(!f.process_data_header(&key("/a")), "PIT match");
        assert!(f.process_data_header(&key("/x")));
        assert_eq!(f.stats().unsolicited_data, 1);
        assert!(
            f.pit().contains(&Name::from_uri("/a")),
            "probe is read-only"
        );

        let mut pf = Forwarder::new(ForwarderConfig {
            cache_unsolicited: true,
            ..ForwarderConfig::default()
        });
        assert!(
            !pf.process_data_header(&key("/x")),
            "a caching pure forwarder must always decode"
        );
        assert_eq!(pf.stats().unsolicited_data, 0);
    }

    #[test]
    fn state_bytes_cover_tables() {
        let mut f = fwd();
        let base = f.state_bytes();
        f.cs_mut().insert(data("/a"), now());
        f.process_interest(now(), &interest("/b", 1), FaceId::APP);
        assert!(f.state_bytes() > base);
    }
}
