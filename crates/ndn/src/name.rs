//! Hierarchical NDN names.
//!
//! A [`Name`] is a sequence of opaque byte [`Component`]s, written in URI
//! form as `/component1/component2/...`. DAPES names collections, files and
//! packets this way: `/damaged-bridge-1533783192/bridge-picture/0` (paper
//! §IV-A). Ordering follows NDN canonical order (shorter component first,
//! then lexicographic), which makes a name sort before every name it is a
//! prefix of — the property the CS/FIB rely on for prefix searches.

use dapes_netsim::payload::Payload;
use std::fmt;
use std::sync::Arc;

/// One name component: opaque bytes, displayed with URI percent-escaping.
///
/// Components are backed by a shared [`Payload`] buffer: cloning one — and
/// names are cloned on every PIT insert, CS key and forwarded packet —
/// bumps a reference count instead of copying the bytes. A component
/// decoded from a received frame is a zero-copy *view* into that frame's
/// buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Component(Payload);

impl Component {
    /// Creates a component from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Component(Payload::from(bytes.into()))
    }

    /// Creates a component as a zero-copy view of `payload` (used by the
    /// packet decoder so received names borrow from the received frame).
    pub fn from_payload(payload: Payload) -> Self {
        Component(payload)
    }

    /// Creates a component from UTF-8 text.
    pub fn from_str_component(s: &str) -> Self {
        Component(Payload::copy_from_slice(s.as_bytes()))
    }

    /// Creates a component holding a decimal sequence number, as DAPES uses
    /// for packet indices.
    pub fn from_seq(seq: u64) -> Self {
        Component(Payload::from(seq.to_string().into_bytes()))
    }

    /// Raw bytes of the component.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Parses the component as a decimal sequence number.
    pub fn to_seq(&self) -> Option<u64> {
        std::str::from_utf8(&self.0).ok()?.parse().ok()
    }

    /// Component length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the component is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl PartialOrd for Component {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// NDN canonical order: shorter components sort first; equal lengths compare
/// lexicographically.
impl Ord for Component {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .len()
            .cmp(&other.0.len())
            .then_with(|| self.0.as_slice().cmp(other.0.as_slice()))
    }
}

impl fmt::Debug for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in self.0.iter() {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~') {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "%{b:02X}")?;
            }
        }
        Ok(())
    }
}

impl From<&str> for Component {
    fn from(s: &str) -> Self {
        Component::from_str_component(s)
    }
}

impl From<u64> for Component {
    fn from(seq: u64) -> Self {
        Component::from_seq(seq)
    }
}

/// A hierarchical NDN name.
///
/// # Examples
///
/// ```
/// use dapes_ndn::name::Name;
///
/// let n = Name::from_uri("/damaged-bridge-1533783192/bridge-picture/0");
/// assert_eq!(n.len(), 3);
/// assert!(Name::from_uri("/damaged-bridge-1533783192").is_prefix_of(&n));
/// assert_eq!(n.component(2).and_then(|c| c.to_seq()), Some(0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Name {
    /// Shared component list: cloning a `Name` is one reference-count bump,
    /// which is what makes PIT/CS/forwarder name handling allocation-free.
    components: Arc<Vec<Component>>,
}

impl Name {
    /// The empty (root) name `/`.
    pub fn root() -> Self {
        Name::default()
    }

    /// Builds a name from components.
    pub fn from_components(components: Vec<Component>) -> Self {
        Name {
            components: Arc::new(components),
        }
    }

    /// Parses a URI like `/a/b/0`. Percent-escapes (`%2F`) decode to raw
    /// bytes. Empty segments are ignored, so `/a//b` equals `/a/b` and `/`
    /// is the root name.
    pub fn from_uri(uri: &str) -> Self {
        let mut components = Vec::new();
        for seg in uri.split('/') {
            if seg.is_empty() {
                continue;
            }
            components.push(Component(Payload::from(unescape(seg))));
        }
        Name::from_components(components)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether this is the root name.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The `i`th component.
    pub fn component(&self, i: usize) -> Option<&Component> {
        self.components.get(i)
    }

    /// The final component.
    pub fn last(&self) -> Option<&Component> {
        self.components.last()
    }

    /// All components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Returns a new name with `component` appended.
    #[must_use]
    pub fn child(&self, component: impl Into<Component>) -> Name {
        let mut components = (*self.components).clone();
        components.push(component.into());
        Name::from_components(components)
    }

    /// Appends a component in place.
    pub fn push(&mut self, component: impl Into<Component>) {
        Arc::make_mut(&mut self.components).push(component.into());
    }

    /// The first `k` components as a new name.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.len()`.
    #[must_use]
    pub fn prefix(&self, k: usize) -> Name {
        assert!(k <= self.components.len(), "prefix longer than name");
        Name::from_components(self.components[..k].to_vec())
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Name) -> bool {
        self.components.len() <= other.components.len()
            && self
                .components
                .iter()
                .zip(other.components.iter())
                .all(|(a, b)| a == b)
    }

    /// Approximate heap footprint, for the Table I memory proxy.
    pub fn state_bytes(&self) -> usize {
        self.components.iter().map(|c| c.len() + 8).sum::<usize>() + 24
    }

    /// The canonical encoding of the name's TLV *value* region — the
    /// concatenated component TLVs, without the outer Name header. This is
    /// the byte string a peeked frame exposes for its name, so it serves as
    /// the key of the PIT/CS wire indexes that let overheard frames be
    /// resolved without building a `Name` at all.
    pub fn to_wire_value(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.state_bytes());
        for c in self.components.iter() {
            crate::tlv::write_tlv(&mut out, crate::tlv::types::NAME_COMPONENT, c.as_bytes());
        }
        out
    }

    /// Whether `value` (a name TLV value region, as exposed by a peeked
    /// header) encodes exactly this name — equivalent to decoding it and
    /// comparing, but without allocating. Unparseable bytes never match.
    pub fn wire_value_eq(&self, value: &[u8]) -> bool {
        let mut r = crate::tlv::TlvReader::new(value);
        let mut components = self.components.iter();
        while !r.is_at_end() {
            // Mirror the decoder: any component type is treated as generic.
            let Ok((_typ, bytes)) = r.read_tlv() else {
                return false;
            };
            match components.next() {
                Some(c) if c.as_bytes() == bytes => {}
                _ => return false,
            }
        }
        components.next().is_none()
    }
}

/// Walks a name-TLV value region (the borrowed bytes a peeked header
/// carries), pushing the byte offset *after* each component into `out`.
/// Returns `false` — leaving `out` in an unspecified state — when the
/// region is malformed or truncated, i.e. whenever decoding it into a
/// [`Name`] would also fail at the framing level.
///
/// The offsets are exactly the candidate cut points for wire-level prefix
/// queries: `value[..b]` for each reported boundary `b` (plus the empty
/// slice for the root prefix) enumerates every prefix of the encoded name,
/// because a name's canonical wire value byte-extends all of its prefixes'
/// wire values at component boundaries. FIB longest-prefix matching and the
/// Content Store's ordered prefix index both rely on this.
pub fn wire_component_boundaries(value: &[u8], out: &mut Vec<usize>) -> bool {
    out.clear();
    let mut r = crate::tlv::TlvReader::new(value);
    while !r.is_at_end() {
        if r.read_tlv().is_err() {
            return false;
        }
        out.push(value.len() - r.remaining());
    }
    true
}

/// Whether `value` is a complete, well-formed name-TLV value region — the
/// allocation-free validity half of [`wire_component_boundaries`], for
/// callers (e.g. the Content Store's ordered prefix probe) that need the
/// guarantee but not the cut points.
pub fn wire_value_is_well_formed(value: &[u8]) -> bool {
    let mut r = crate::tlv::TlvReader::new(value);
    while !r.is_at_end() {
        if r.read_tlv().is_err() {
            return false;
        }
    }
    true
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "/");
        }
        for c in self.components.iter() {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<&str> for Name {
    fn from(uri: &str) -> Self {
        Name::from_uri(uri)
    }
}

fn unescape(seg: &str) -> Vec<u8> {
    let bytes = seg.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let Ok(v) = u8::from_str_radix(&seg[i + 1..i + 3], 16) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uri_round_trip() {
        let n = Name::from_uri("/damaged-bridge-1533783192/bridge-picture/0");
        assert_eq!(n.to_string(), "/damaged-bridge-1533783192/bridge-picture/0");
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn root_name() {
        assert_eq!(Name::root().to_string(), "/");
        assert_eq!(Name::from_uri("/"), Name::root());
        assert!(Name::root().is_prefix_of(&Name::from_uri("/a")));
    }

    #[test]
    fn empty_segments_collapse() {
        assert_eq!(Name::from_uri("/a//b/"), Name::from_uri("/a/b"));
    }

    #[test]
    fn escaping_round_trips_binary() {
        let c = Component::from_bytes(vec![0x00, 0x2f, 0xff, b'a']);
        let shown = c.to_string();
        assert_eq!(shown, "%00%2F%FFa");
        let parsed = Name::from_uri(&format!("/{shown}"));
        assert_eq!(parsed.component(0), Some(&c));
    }

    #[test]
    fn prefix_relationships() {
        let a = Name::from_uri("/a/b");
        let ab = Name::from_uri("/a/b/c");
        assert!(a.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&a));
        assert!(!ab.is_prefix_of(&a));
        assert!(!Name::from_uri("/a/x").is_prefix_of(&ab));
        assert_eq!(ab.prefix(2), a);
        assert_eq!(ab.prefix(0), Name::root());
    }

    #[test]
    #[should_panic(expected = "prefix longer than name")]
    fn prefix_past_end_panics() {
        let _ = Name::from_uri("/a").prefix(2);
    }

    #[test]
    fn child_and_push_append() {
        let n = Name::from_uri("/col").child("file").child(7u64);
        assert_eq!(n.to_string(), "/col/file/7");
        let mut m = Name::from_uri("/col");
        m.push("file");
        m.push(7u64);
        assert_eq!(m, n);
    }

    #[test]
    fn seq_components_parse() {
        let n = Name::from_uri("/c/f/123");
        assert_eq!(n.last().and_then(|c| c.to_seq()), Some(123));
        assert_eq!(
            Name::from_uri("/c/f/xyz").last().and_then(|c| c.to_seq()),
            None
        );
    }

    #[test]
    fn canonical_order_puts_prefix_first() {
        let a = Name::from_uri("/a");
        let ab = Name::from_uri("/a/b");
        let b = Name::from_uri("/b");
        assert!(a < ab, "prefix sorts before extension");
        assert!(ab < b, "then lexicographic");
        // Shorter component sorts first regardless of bytes.
        let short = Name::from_uri("/z");
        let long = Name::from_uri("/aa");
        assert!(short < long);
    }

    #[test]
    fn ordering_groups_prefixes_contiguously() {
        // Everything prefixed by /col sorts in one contiguous run, which the
        // content store's prefix lookup depends on.
        let mut names = [
            Name::from_uri("/col/f/10"),
            Name::from_uri("/col"),
            Name::from_uri("/zzz"),
            Name::from_uri("/col/f/2"),
            Name::from_uri("/az"),
            Name::from_uri("/col/a"),
        ];
        names.sort();
        let col = Name::from_uri("/col");
        let in_run: Vec<bool> = names.iter().map(|n| col.is_prefix_of(n)).collect();
        let first = in_run.iter().position(|&b| b).expect("some");
        let last = in_run.iter().rposition(|&b| b).expect("some");
        assert!(in_run[first..=last].iter().all(|&b| b));
    }

    #[test]
    fn state_bytes_nonzero() {
        assert!(Name::from_uri("/a/b").state_bytes() > 0);
    }

    #[test]
    fn wire_component_boundaries_enumerate_prefixes() {
        let n = Name::from_uri("/col/f/10");
        let wire = n.to_wire_value();
        let mut bounds = Vec::new();
        assert!(wire_component_boundaries(&wire, &mut bounds));
        assert_eq!(bounds.len(), n.len());
        assert_eq!(*bounds.last().unwrap(), wire.len());
        // Every boundary cut is exactly a prefix's wire value.
        for (k, &b) in bounds.iter().enumerate() {
            assert_eq!(&wire[..b], &n.prefix(k + 1).to_wire_value()[..]);
        }
        // Root: the empty region is valid with no boundaries.
        assert!(wire_component_boundaries(&[], &mut bounds));
        assert!(bounds.is_empty());
        // Truncation and overruns are rejected.
        assert!(!wire_component_boundaries(
            &wire[..wire.len() - 1],
            &mut bounds
        ));
        assert!(!wire_component_boundaries(&[0x08, 200, 1], &mut bounds));
    }
}
