//! NDN-TLV primitive encoding (type-length-value with 1/3/5/9-byte
//! variable-size numbers), per the NDN packet format specification.

use std::fmt;

/// TLV type numbers used by this implementation (NDN packet spec v0.3).
pub mod types {
    /// Interest packet.
    pub const INTEREST: u64 = 0x05;
    /// Data packet.
    pub const DATA: u64 = 0x06;
    /// Name.
    pub const NAME: u64 = 0x07;
    /// GenericNameComponent.
    pub const NAME_COMPONENT: u64 = 0x08;
    /// CanBePrefix (empty value).
    pub const CAN_BE_PREFIX: u64 = 0x21;
    /// MustBeFresh (empty value).
    pub const MUST_BE_FRESH: u64 = 0x12;
    /// Nonce (4 bytes).
    pub const NONCE: u64 = 0x0a;
    /// InterestLifetime (non-negative integer, milliseconds).
    pub const INTEREST_LIFETIME: u64 = 0x0c;
    /// HopLimit (1 byte).
    pub const HOP_LIMIT: u64 = 0x22;
    /// ApplicationParameters.
    pub const APP_PARAMETERS: u64 = 0x24;
    /// MetaInfo.
    pub const META_INFO: u64 = 0x14;
    /// ContentType (non-negative integer).
    pub const CONTENT_TYPE: u64 = 0x18;
    /// FreshnessPeriod (non-negative integer, milliseconds).
    pub const FRESHNESS_PERIOD: u64 = 0x19;
    /// Content.
    pub const CONTENT: u64 = 0x15;
    /// SignatureInfo.
    pub const SIGNATURE_INFO: u64 = 0x16;
    /// SignatureType (non-negative integer).
    pub const SIGNATURE_TYPE: u64 = 0x1b;
    /// SignatureValue.
    pub const SIGNATURE_VALUE: u64 = 0x17;
    /// KeyLocator.
    pub const KEY_LOCATOR: u64 = 0x1c;
}

/// Errors produced while decoding TLV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlvError {
    /// Input ended in the middle of a type, length, or value.
    Truncated,
    /// A length field exceeded the remaining input.
    LengthOverrun,
    /// An unexpected TLV type where another was required.
    UnexpectedType {
        /// The type that was expected.
        expected: u64,
        /// The type that was found.
        found: u64,
    },
    /// A value had the wrong size or content for its type.
    BadValue(&'static str),
}

impl fmt::Display for TlvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlvError::Truncated => write!(f, "tlv input truncated"),
            TlvError::LengthOverrun => write!(f, "tlv length exceeds input"),
            TlvError::UnexpectedType { expected, found } => {
                write!(f, "expected tlv type {expected:#x}, found {found:#x}")
            }
            TlvError::BadValue(what) => write!(f, "bad tlv value: {what}"),
        }
    }
}

impl std::error::Error for TlvError {}

/// Appends a TLV variable-size number.
pub fn write_varnum(out: &mut Vec<u8>, n: u64) {
    if n < 253 {
        out.push(n as u8);
    } else if n <= u16::MAX as u64 {
        out.push(253);
        out.extend_from_slice(&(n as u16).to_be_bytes());
    } else if n <= u32::MAX as u64 {
        out.push(254);
        out.extend_from_slice(&(n as u32).to_be_bytes());
    } else {
        out.push(255);
        out.extend_from_slice(&n.to_be_bytes());
    }
}

/// Appends a full TLV (type, length, value).
pub fn write_tlv(out: &mut Vec<u8>, typ: u64, value: &[u8]) {
    write_varnum(out, typ);
    write_varnum(out, value.len() as u64);
    out.extend_from_slice(value);
}

/// Appends a TLV whose value is a non-negative integer in the shortest of
/// 1/2/4/8 bytes, as the NDN spec requires.
pub fn write_nonneg_tlv(out: &mut Vec<u8>, typ: u64, n: u64) {
    write_varnum(out, typ);
    if n <= u8::MAX as u64 {
        write_varnum(out, 1);
        out.push(n as u8);
    } else if n <= u16::MAX as u64 {
        write_varnum(out, 2);
        out.extend_from_slice(&(n as u16).to_be_bytes());
    } else if n <= u32::MAX as u64 {
        write_varnum(out, 4);
        out.extend_from_slice(&(n as u32).to_be_bytes());
    } else {
        write_varnum(out, 8);
        out.extend_from_slice(&n.to_be_bytes());
    }
}

/// A cursor over TLV-encoded bytes.
#[derive(Clone, Debug)]
pub struct TlvReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> TlvReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        TlvReader { buf, pos: 0 }
    }

    /// Whether all input has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads a variable-size number.
    pub fn read_varnum(&mut self) -> Result<u64, TlvError> {
        let (n, next) = self.varnum_at(self.pos)?;
        self.pos = next;
        Ok(n)
    }

    /// Decodes a variable-size number at `pos` without touching the cursor,
    /// returning the value and the offset just past it.
    fn varnum_at(&self, pos: usize) -> Result<(u64, usize), TlvError> {
        let first = *self.buf.get(pos).ok_or(TlvError::Truncated)?;
        let len = match first {
            0..=252 => return Ok((first as u64, pos + 1)),
            253 => 2,
            254 => 4,
            255 => 8,
        };
        let end = pos + 1 + len;
        if end > self.buf.len() {
            return Err(TlvError::Truncated);
        }
        let mut n = 0u64;
        for &b in &self.buf[pos + 1..end] {
            n = (n << 8) | b as u64;
        }
        Ok((n, end))
    }

    /// Peeks the next TLV type without consuming anything (and without
    /// copying the reader: only the offset is re-derived).
    pub fn peek_type(&self) -> Result<u64, TlvError> {
        self.varnum_at(self.pos).map(|(n, _)| n)
    }

    /// Reads one TLV header and returns `(type, value)`, consuming it.
    pub fn read_tlv(&mut self) -> Result<(u64, &'a [u8]), TlvError> {
        let typ = self.read_varnum()?;
        let len = self.read_varnum()? as usize;
        if self.remaining() < len {
            return Err(TlvError::LengthOverrun);
        }
        let value = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok((typ, value))
    }

    /// Reads a TLV that must have type `expected`.
    pub fn read_expected(&mut self, expected: u64) -> Result<&'a [u8], TlvError> {
        let start = self.pos;
        let (typ, value) = self.read_tlv()?;
        if typ != expected {
            self.pos = start;
            return Err(TlvError::UnexpectedType {
                expected,
                found: typ,
            });
        }
        Ok(value)
    }

    /// Reads an optional TLV of type `expected`; `None` if the next TLV has
    /// a different type or input ended.
    pub fn read_optional(&mut self, expected: u64) -> Result<Option<&'a [u8]>, TlvError> {
        if self.is_at_end() {
            return Ok(None);
        }
        if self.peek_type()? != expected {
            return Ok(None);
        }
        Ok(Some(self.read_expected(expected)?))
    }

    /// Skips TLVs until one of type `expected` is found or input ends.
    /// Unknown types are ignored (forward compatibility).
    pub fn seek_type(&mut self, expected: u64) -> Result<Option<&'a [u8]>, TlvError> {
        while !self.is_at_end() {
            if self.peek_type()? == expected {
                return Ok(Some(self.read_expected(expected)?));
            }
            self.read_tlv()?;
        }
        Ok(None)
    }
}

/// Decodes a non-negative integer value (1/2/4/8 bytes).
pub fn decode_nonneg(value: &[u8]) -> Result<u64, TlvError> {
    match value.len() {
        1 => Ok(value[0] as u64),
        2 => Ok(u16::from_be_bytes(value.try_into().expect("len 2")) as u64),
        4 => Ok(u32::from_be_bytes(value.try_into().expect("len 4")) as u64),
        8 => Ok(u64::from_be_bytes(value.try_into().expect("len 8"))),
        _ => Err(TlvError::BadValue(
            "non-negative integer must be 1/2/4/8 bytes",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varnum_round_trip_all_widths() {
        for n in [
            0u64,
            1,
            252,
            253,
            255,
            256,
            65535,
            65536,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varnum(&mut buf, n);
            let mut r = TlvReader::new(&buf);
            assert_eq!(r.read_varnum().expect("decode"), n, "n={n}");
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn varnum_uses_minimal_width() {
        let mut buf = Vec::new();
        write_varnum(&mut buf, 252);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varnum(&mut buf, 253);
        assert_eq!(buf.len(), 3);
        buf.clear();
        write_varnum(&mut buf, 70000);
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn tlv_round_trip() {
        let mut buf = Vec::new();
        write_tlv(&mut buf, types::CONTENT, b"hello");
        write_tlv(&mut buf, types::NONCE, &[1, 2, 3, 4]);
        let mut r = TlvReader::new(&buf);
        assert_eq!(r.read_expected(types::CONTENT).expect("content"), b"hello");
        assert_eq!(r.read_expected(types::NONCE).expect("nonce"), &[1, 2, 3, 4]);
        assert!(r.is_at_end());
    }

    #[test]
    fn unexpected_type_does_not_consume() {
        let mut buf = Vec::new();
        write_tlv(&mut buf, types::CONTENT, b"x");
        let mut r = TlvReader::new(&buf);
        assert!(matches!(
            r.read_expected(types::NONCE),
            Err(TlvError::UnexpectedType {
                expected: 0x0a,
                found: 0x15
            })
        ));
        // Still readable as its real type.
        assert_eq!(r.read_expected(types::CONTENT).expect("content"), b"x");
    }

    #[test]
    fn optional_reads_and_skips() {
        let mut buf = Vec::new();
        write_tlv(&mut buf, types::CONTENT, b"x");
        let mut r = TlvReader::new(&buf);
        assert_eq!(r.read_optional(types::NONCE).expect("ok"), None);
        assert_eq!(
            r.read_optional(types::CONTENT).expect("ok"),
            Some(&b"x"[..])
        );
        assert_eq!(r.read_optional(types::CONTENT).expect("ok"), None);
    }

    #[test]
    fn seek_skips_unknown_types() {
        let mut buf = Vec::new();
        write_tlv(&mut buf, 0x99, b"junk");
        write_tlv(&mut buf, types::CONTENT, b"payload");
        let mut r = TlvReader::new(&buf);
        assert_eq!(
            r.seek_type(types::CONTENT).expect("ok"),
            Some(&b"payload"[..])
        );
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        write_tlv(&mut buf, types::CONTENT, b"hello");
        for cut in 0..buf.len() {
            let mut r = TlvReader::new(&buf[..cut]);
            assert!(r.read_expected(types::CONTENT).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn length_overrun_detected() {
        // Claim 200-byte value but provide 2.
        let buf = [0x15u8, 200, 0, 0];
        let mut r = TlvReader::new(&buf);
        assert_eq!(r.read_tlv(), Err(TlvError::LengthOverrun));
    }

    #[test]
    fn nonneg_round_trip() {
        for n in [0u64, 255, 256, 65535, 65536, u64::MAX] {
            let mut buf = Vec::new();
            write_nonneg_tlv(&mut buf, types::FRESHNESS_PERIOD, n);
            let mut r = TlvReader::new(&buf);
            let v = r.read_expected(types::FRESHNESS_PERIOD).expect("value");
            assert_eq!(decode_nonneg(v).expect("decode"), n);
        }
    }

    #[test]
    fn nonneg_rejects_odd_widths() {
        assert!(decode_nonneg(&[0, 0, 0]).is_err());
        assert!(decode_nonneg(&[]).is_err());
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = TlvError::UnexpectedType {
            expected: 5,
            found: 6,
        };
        assert!(e.to_string().contains("0x5"));
    }
}
