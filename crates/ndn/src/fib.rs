//! The Forwarding Information Base.
//!
//! The FIB maps name prefixes to next-hop faces by longest-prefix match
//! (paper Fig. 1). In the DAPES deployment it is small — the application
//! registers its prefixes on the app face and everything else defaults to
//! the wireless broadcast face — but the implementation is a faithful LPM
//! table so richer topologies work too.

use crate::face::FaceId;
use crate::hash::FxBuildHasher;
use crate::name::{wire_component_boundaries, Name};
use std::collections::{BTreeMap, HashMap};

/// A longest-prefix-match table from name prefixes to next-hop faces.
///
/// Alongside the canonical `Name`-keyed map, the FIB mirrors its entries in
/// a *wire index* keyed by [`Name::to_wire_value`]:
/// [`Fib::longest_prefix_match_wire`] answers LPM queries against a peeked
/// frame's borrowed name bytes directly — component boundaries found by a
/// cheap TLV walk are the only candidate cut points, probed longest-first —
/// so an overheard not-for-me Interest can be classified without building a
/// `Name`.
///
/// # Examples
///
/// ```
/// use dapes_ndn::fib::Fib;
/// use dapes_ndn::face::FaceId;
/// use dapes_ndn::name::Name;
///
/// let mut fib = Fib::new();
/// fib.register(Name::from_uri("/"), FaceId::WIRELESS);
/// fib.register(Name::from_uri("/dapes"), FaceId::APP);
/// assert_eq!(fib.longest_prefix_match(&Name::from_uri("/dapes/discovery")), &[FaceId::APP]);
/// assert_eq!(fib.longest_prefix_match(&Name::from_uri("/col/f/0")), &[FaceId::WIRELESS]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Fib {
    entries: BTreeMap<Name, Vec<FaceId>>,
    /// Mirror of `entries` keyed by the prefix's canonical wire value.
    by_wire: HashMap<Vec<u8>, Vec<FaceId>, FxBuildHasher>,
    /// Longest registered prefix in components, bounding the wire LPM's
    /// probe count.
    max_components: usize,
}

impl Fib {
    /// Creates an empty FIB.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Registers `face` as a next hop for `prefix`. Registering the same
    /// pair twice is a no-op.
    pub fn register(&mut self, prefix: Name, face: FaceId) {
        self.max_components = self.max_components.max(prefix.len());
        let wire_key = prefix.to_wire_value();
        let faces = self.entries.entry(prefix).or_default();
        if !faces.contains(&face) {
            faces.push(face);
        }
        self.by_wire.insert(wire_key, faces.clone());
    }

    /// Removes a next hop; drops the entry when no hops remain.
    pub fn unregister(&mut self, prefix: &Name, face: FaceId) {
        if let Some(faces) = self.entries.get_mut(prefix) {
            faces.retain(|&f| f != face);
            if faces.is_empty() {
                self.entries.remove(prefix);
                self.by_wire.remove(&prefix.to_wire_value());
                self.max_components = self.entries.keys().map(Name::len).max().unwrap_or(0);
            } else {
                self.by_wire.insert(prefix.to_wire_value(), faces.clone());
            }
        }
    }

    /// Longest-prefix-match lookup. Returns the next hops of the longest
    /// registered prefix of `name`, or an empty slice when nothing matches.
    pub fn longest_prefix_match(&self, name: &Name) -> &[FaceId] {
        for k in (0..=name.len()).rev() {
            if let Some(faces) = self.entries.get(&name.prefix(k)) {
                return faces;
            }
        }
        &[]
    }

    /// [`Fib::longest_prefix_match`] against a peeked frame's borrowed name
    /// bytes — no `Name` is built and, for realistically short names, no
    /// allocation is made (this runs once per overheard Interest at swarm
    /// scale). Returns `None` when the region is malformed or truncated
    /// (the caller must fall through to the full decode, which fails at
    /// the same byte), and `Some(&[])`/`Some(faces)` with exactly what the
    /// `Name`-keyed lookup would return otherwise.
    pub fn longest_prefix_match_wire(&self, name_wire: &[u8]) -> Option<&[FaceId]> {
        // Walk the whole region first: a truncated tail must not resolve
        // even when some shorter prefix would match. Boundaries land in a
        // fixed scratch array; names deeper than it only matter when a
        // registered prefix could be that deep too, and fall back to the
        // allocating walk.
        const INLINE: usize = 16;
        let mut buf = [0usize; INLINE];
        let mut components = 0usize;
        let mut r = crate::tlv::TlvReader::new(name_wire);
        while !r.is_at_end() {
            if r.read_tlv().is_err() {
                return None;
            }
            if components < INLINE {
                buf[components] = name_wire.len() - r.remaining();
            }
            components += 1;
        }
        if components > INLINE && self.max_components > INLINE {
            let mut boundaries = Vec::with_capacity(components);
            wire_component_boundaries(name_wire, &mut boundaries);
            for &b in boundaries.iter().take(self.max_components).rev() {
                if let Some(faces) = self.by_wire.get(&name_wire[..b]) {
                    return Some(faces);
                }
            }
        } else {
            let probes = components.min(INLINE).min(self.max_components);
            for &b in buf[..probes].iter().rev() {
                if let Some(faces) = self.by_wire.get(&name_wire[..b]) {
                    return Some(faces);
                }
            }
        }
        Some(self.by_wire.get([].as_slice()).map_or(&[], Vec::as_slice))
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the FIB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes of state, including the wire index's key bytes.
    pub fn state_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(n, f)| n.state_bytes() + f.len() * 4)
            .sum::<usize>()
            + self
                .by_wire
                .iter()
                .map(|(k, f)| k.len() + f.len() * 4 + 16)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(uri: &str) -> Name {
        Name::from_uri(uri)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.register(name("/"), FaceId(10));
        fib.register(name("/a"), FaceId(11));
        fib.register(name("/a/b"), FaceId(12));
        assert_eq!(fib.longest_prefix_match(&name("/a/b/c")), &[FaceId(12)]);
        assert_eq!(fib.longest_prefix_match(&name("/a/x")), &[FaceId(11)]);
        assert_eq!(fib.longest_prefix_match(&name("/z")), &[FaceId(10)]);
    }

    #[test]
    fn no_match_returns_empty() {
        let mut fib = Fib::new();
        fib.register(name("/a"), FaceId(1));
        assert!(fib.longest_prefix_match(&name("/b")).is_empty());
        assert!(Fib::new().longest_prefix_match(&name("/a")).is_empty());
    }

    #[test]
    fn exact_name_matches_its_own_prefix_entry() {
        let mut fib = Fib::new();
        fib.register(name("/a/b"), FaceId(1));
        assert_eq!(fib.longest_prefix_match(&name("/a/b")), &[FaceId(1)]);
    }

    #[test]
    fn multiple_next_hops_preserved_in_order() {
        let mut fib = Fib::new();
        fib.register(name("/a"), FaceId(1));
        fib.register(name("/a"), FaceId(2));
        fib.register(name("/a"), FaceId(1)); // duplicate ignored
        assert_eq!(
            fib.longest_prefix_match(&name("/a")),
            &[FaceId(1), FaceId(2)]
        );
    }

    #[test]
    fn unregister_removes_hop_then_entry() {
        let mut fib = Fib::new();
        fib.register(name("/a"), FaceId(1));
        fib.register(name("/a"), FaceId(2));
        fib.unregister(&name("/a"), FaceId(1));
        assert_eq!(fib.longest_prefix_match(&name("/a")), &[FaceId(2)]);
        fib.unregister(&name("/a"), FaceId(2));
        assert!(fib.longest_prefix_match(&name("/a")).is_empty());
        assert!(fib.is_empty());
    }

    #[test]
    fn wire_lpm_mirrors_name_lpm() {
        let mut fib = Fib::new();
        fib.register(name("/a"), FaceId(1));
        fib.register(name("/a/b"), FaceId(2));
        fib.register(name("/c"), FaceId(3));
        for q in ["/a/b/c", "/a/b", "/a/x", "/a", "/c/z", "/b", "/"] {
            let qn = name(q);
            assert_eq!(
                fib.longest_prefix_match_wire(&qn.to_wire_value())
                    .expect("well-formed"),
                fib.longest_prefix_match(&qn),
                "query {q}"
            );
        }
        // A root entry backstops everything, through both lookups.
        fib.register(name("/"), FaceId(9));
        for q in ["/b", "/"] {
            let qn = name(q);
            assert_eq!(
                fib.longest_prefix_match_wire(&qn.to_wire_value())
                    .expect("well-formed"),
                fib.longest_prefix_match(&qn),
            );
        }
        // Unregistration keeps the mirror in sync.
        fib.unregister(&name("/a/b"), FaceId(2));
        let q = name("/a/b/c");
        assert_eq!(
            fib.longest_prefix_match_wire(&q.to_wire_value())
                .expect("well-formed"),
            &[FaceId(1)]
        );
    }

    #[test]
    fn wire_lpm_rejects_malformed_regions() {
        let mut fib = Fib::new();
        fib.register(name("/a"), FaceId(1));
        let wire = name("/a/b").to_wire_value();
        // Truncating mid-TLV must not resolve, even though the intact "/a"
        // prefix bytes would match.
        for cut in 1..wire.len() {
            if cut == name("/a").to_wire_value().len() {
                continue; // a complete region, legitimately resolvable
            }
            assert!(
                fib.longest_prefix_match_wire(&wire[..cut]).is_none(),
                "cut={cut} must be rejected"
            );
        }
        assert!(fib.longest_prefix_match_wire(&[0x08, 200]).is_none());
    }

    #[test]
    fn lpm_equals_naive_scan() {
        // Cross-check the BTreeMap walk against a brute-force scan.
        let mut fib = Fib::new();
        let prefixes = ["/", "/a", "/a/b", "/a/b/c", "/b", "/b/c/d"];
        for (i, p) in prefixes.iter().enumerate() {
            fib.register(name(p), FaceId(i as u32));
        }
        let queries = ["/a/b/c/d", "/a/b/x", "/a", "/b/c", "/b/c/d/e", "/c", "/"];
        for q in queries {
            let qn = name(q);
            let naive = prefixes
                .iter()
                .enumerate()
                .filter(|(_, p)| name(p).is_prefix_of(&qn))
                .max_by_key(|(_, p)| name(p).len())
                .map(|(i, _)| FaceId(i as u32));
            let got = fib.longest_prefix_match(&qn).first().copied();
            assert_eq!(got, naive, "query {q}");
        }
    }
}
