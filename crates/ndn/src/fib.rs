//! The Forwarding Information Base.
//!
//! The FIB maps name prefixes to next-hop faces by longest-prefix match
//! (paper Fig. 1). In the DAPES deployment it is small — the application
//! registers its prefixes on the app face and everything else defaults to
//! the wireless broadcast face — but the implementation is a faithful LPM
//! table so richer topologies work too.

use crate::face::FaceId;
use crate::name::Name;
use std::collections::BTreeMap;

/// A longest-prefix-match table from name prefixes to next-hop faces.
///
/// # Examples
///
/// ```
/// use dapes_ndn::fib::Fib;
/// use dapes_ndn::face::FaceId;
/// use dapes_ndn::name::Name;
///
/// let mut fib = Fib::new();
/// fib.register(Name::from_uri("/"), FaceId::WIRELESS);
/// fib.register(Name::from_uri("/dapes"), FaceId::APP);
/// assert_eq!(fib.longest_prefix_match(&Name::from_uri("/dapes/discovery")), &[FaceId::APP]);
/// assert_eq!(fib.longest_prefix_match(&Name::from_uri("/col/f/0")), &[FaceId::WIRELESS]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Fib {
    entries: BTreeMap<Name, Vec<FaceId>>,
}

impl Fib {
    /// Creates an empty FIB.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Registers `face` as a next hop for `prefix`. Registering the same
    /// pair twice is a no-op.
    pub fn register(&mut self, prefix: Name, face: FaceId) {
        let faces = self.entries.entry(prefix).or_default();
        if !faces.contains(&face) {
            faces.push(face);
        }
    }

    /// Removes a next hop; drops the entry when no hops remain.
    pub fn unregister(&mut self, prefix: &Name, face: FaceId) {
        if let Some(faces) = self.entries.get_mut(prefix) {
            faces.retain(|&f| f != face);
            if faces.is_empty() {
                self.entries.remove(prefix);
            }
        }
    }

    /// Longest-prefix-match lookup. Returns the next hops of the longest
    /// registered prefix of `name`, or an empty slice when nothing matches.
    pub fn longest_prefix_match(&self, name: &Name) -> &[FaceId] {
        for k in (0..=name.len()).rev() {
            if let Some(faces) = self.entries.get(&name.prefix(k)) {
                return faces;
            }
        }
        &[]
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the FIB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes of state.
    pub fn state_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(n, f)| n.state_bytes() + f.len() * 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(uri: &str) -> Name {
        Name::from_uri(uri)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.register(name("/"), FaceId(10));
        fib.register(name("/a"), FaceId(11));
        fib.register(name("/a/b"), FaceId(12));
        assert_eq!(fib.longest_prefix_match(&name("/a/b/c")), &[FaceId(12)]);
        assert_eq!(fib.longest_prefix_match(&name("/a/x")), &[FaceId(11)]);
        assert_eq!(fib.longest_prefix_match(&name("/z")), &[FaceId(10)]);
    }

    #[test]
    fn no_match_returns_empty() {
        let mut fib = Fib::new();
        fib.register(name("/a"), FaceId(1));
        assert!(fib.longest_prefix_match(&name("/b")).is_empty());
        assert!(Fib::new().longest_prefix_match(&name("/a")).is_empty());
    }

    #[test]
    fn exact_name_matches_its_own_prefix_entry() {
        let mut fib = Fib::new();
        fib.register(name("/a/b"), FaceId(1));
        assert_eq!(fib.longest_prefix_match(&name("/a/b")), &[FaceId(1)]);
    }

    #[test]
    fn multiple_next_hops_preserved_in_order() {
        let mut fib = Fib::new();
        fib.register(name("/a"), FaceId(1));
        fib.register(name("/a"), FaceId(2));
        fib.register(name("/a"), FaceId(1)); // duplicate ignored
        assert_eq!(
            fib.longest_prefix_match(&name("/a")),
            &[FaceId(1), FaceId(2)]
        );
    }

    #[test]
    fn unregister_removes_hop_then_entry() {
        let mut fib = Fib::new();
        fib.register(name("/a"), FaceId(1));
        fib.register(name("/a"), FaceId(2));
        fib.unregister(&name("/a"), FaceId(1));
        assert_eq!(fib.longest_prefix_match(&name("/a")), &[FaceId(2)]);
        fib.unregister(&name("/a"), FaceId(2));
        assert!(fib.longest_prefix_match(&name("/a")).is_empty());
        assert!(fib.is_empty());
    }

    #[test]
    fn lpm_equals_naive_scan() {
        // Cross-check the BTreeMap walk against a brute-force scan.
        let mut fib = Fib::new();
        let prefixes = ["/", "/a", "/a/b", "/a/b/c", "/b", "/b/c/d"];
        for (i, p) in prefixes.iter().enumerate() {
            fib.register(name(p), FaceId(i as u32));
        }
        let queries = ["/a/b/c/d", "/a/b/x", "/a", "/b/c", "/b/c/d/e", "/c", "/"];
        for q in queries {
            let qn = name(q);
            let naive = prefixes
                .iter()
                .enumerate()
                .filter(|(_, p)| name(p).is_prefix_of(&qn))
                .max_by_key(|(_, p)| name(p).len())
                .map(|(i, _)| FaceId(i as u32));
            let got = fib.longest_prefix_match(&qn).first().copied();
            assert_eq!(got, naive, "query {q}");
        }
    }
}
