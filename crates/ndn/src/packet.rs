//! Interest and Data packets with NDN-TLV wire encoding.
//!
//! The encoding follows the NDN packet format spec closely enough that
//! packet sizes (and therefore air times and collision behaviour in the
//! simulator) are realistic. Data signatures use the
//! [`dapes_crypto::signing`] trust-anchor scheme; the signed portion covers
//! Name, MetaInfo, Content and SignatureInfo, as in the spec.
//!
//! # Encode-once wire cache
//!
//! Both packet types carry a lazily filled wire cache ([`Interest::wire`],
//! [`Data::wire`]): the first encoding is memoized in a shared
//! [`Payload`] buffer and every later send — including every clone made by
//! the forwarder for PIT downstreams or CS hits — reuses it without
//! re-encoding. Decoding via [`Interest::decode_payload`] /
//! [`Data::decode_payload`] seeds the cache with the *received* bytes, so a
//! multi-hop relay re-broadcasts the exact frame it heard with zero
//! re-encoding (also the byte-faithful thing to do for signed packets).
//! Mutating a packet through a builder setter invalidates the cache (no-op
//! "mutations" keep it); [`Interest::decrement_hop_limit`] instead *patches*
//! a warm cache — one copied buffer, one rewritten byte — the same
//! copy-on-write transform the decode-free relay path applies to raw frames.

use crate::name::{Component, Name};
use crate::tlv::{self, types, TlvError, TlvReader};
use dapes_crypto::signing::{KeyId, Signature, Signer, Verifier};
use dapes_crypto::{sha256::sha256, Digest};
use dapes_netsim::payload::Payload;
use std::sync::OnceLock;

/// Copies a wire cache for a cloned packet: the clone shares the same
/// encoded buffer.
fn clone_cache(cache: &OnceLock<Payload>) -> OnceLock<Payload> {
    let out = OnceLock::new();
    if let Some(w) = cache.get() {
        let _ = out.set(w.clone());
    }
    out
}

/// An Interest packet: a request for named data.
///
/// # Examples
///
/// ```
/// use dapes_ndn::packet::Interest;
/// use dapes_ndn::name::Name;
///
/// let i = Interest::new(Name::from_uri("/dapes/discovery"))
///     .with_can_be_prefix(true)
///     .with_nonce(0x1234_5678);
/// let wire = i.encode();
/// let back = Interest::decode(&wire).expect("round trip");
/// assert_eq!(back.name().to_string(), "/dapes/discovery");
/// assert!(back.can_be_prefix());
/// ```
#[derive(Debug)]
pub struct Interest {
    name: Name,
    can_be_prefix: bool,
    must_be_fresh: bool,
    nonce: u32,
    /// Lifetime in milliseconds (PIT entry duration).
    lifetime_ms: u64,
    hop_limit: Option<u8>,
    app_parameters: Option<Payload>,
    /// Encode-once cache; never compared, cloned by reference.
    wire: OnceLock<Payload>,
}

impl Clone for Interest {
    fn clone(&self) -> Self {
        Interest {
            name: self.name.clone(),
            can_be_prefix: self.can_be_prefix,
            must_be_fresh: self.must_be_fresh,
            nonce: self.nonce,
            lifetime_ms: self.lifetime_ms,
            hop_limit: self.hop_limit,
            app_parameters: self.app_parameters.clone(),
            wire: clone_cache(&self.wire),
        }
    }
}

impl PartialEq for Interest {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.can_be_prefix == other.can_be_prefix
            && self.must_be_fresh == other.must_be_fresh
            && self.nonce == other.nonce
            && self.lifetime_ms == other.lifetime_ms
            && self.hop_limit == other.hop_limit
            && self.app_parameters == other.app_parameters
    }
}

impl Eq for Interest {}

impl Interest {
    /// Default InterestLifetime (the NDN default of 4 s).
    pub const DEFAULT_LIFETIME_MS: u64 = 4_000;

    /// Creates an Interest for `name` with defaults.
    pub fn new(name: Name) -> Self {
        Interest {
            name,
            can_be_prefix: false,
            must_be_fresh: false,
            nonce: 0,
            lifetime_ms: Self::DEFAULT_LIFETIME_MS,
            hop_limit: None,
            app_parameters: None,
            wire: OnceLock::new(),
        }
    }

    /// The requested name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Whether Data whose name extends the Interest name may satisfy it.
    pub fn can_be_prefix(&self) -> bool {
        self.can_be_prefix
    }

    /// Whether only fresh Data (within its FreshnessPeriod) may satisfy it.
    pub fn must_be_fresh(&self) -> bool {
        self.must_be_fresh
    }

    /// The duplicate-suppression nonce.
    pub fn nonce(&self) -> u32 {
        self.nonce
    }

    /// Lifetime in milliseconds.
    pub fn lifetime_ms(&self) -> u64 {
        self.lifetime_ms
    }

    /// Remaining hop limit, if any.
    pub fn hop_limit(&self) -> Option<u8> {
        self.hop_limit
    }

    /// Application parameters (DAPES carries bitmaps here).
    pub fn app_parameters(&self) -> Option<&[u8]> {
        self.app_parameters.as_deref()
    }

    /// Sets CanBePrefix. A no-op change keeps the wire cache.
    #[must_use]
    pub fn with_can_be_prefix(mut self, v: bool) -> Self {
        if self.can_be_prefix != v {
            self.can_be_prefix = v;
            self.wire = OnceLock::new();
        }
        self
    }

    /// Sets MustBeFresh. A no-op change keeps the wire cache.
    #[must_use]
    pub fn with_must_be_fresh(mut self, v: bool) -> Self {
        if self.must_be_fresh != v {
            self.must_be_fresh = v;
            self.wire = OnceLock::new();
        }
        self
    }

    /// Sets the nonce. A no-op change keeps the wire cache.
    #[must_use]
    pub fn with_nonce(mut self, nonce: u32) -> Self {
        if self.nonce != nonce {
            self.nonce = nonce;
            self.wire = OnceLock::new();
        }
        self
    }

    /// Sets the lifetime in milliseconds. A no-op change keeps the wire
    /// cache.
    #[must_use]
    pub fn with_lifetime_ms(mut self, ms: u64) -> Self {
        if self.lifetime_ms != ms {
            self.lifetime_ms = ms;
            self.wire = OnceLock::new();
        }
        self
    }

    /// Sets the hop limit. A no-op change keeps the wire cache.
    #[must_use]
    pub fn with_hop_limit(mut self, hops: u8) -> Self {
        if self.hop_limit != Some(hops) {
            self.hop_limit = Some(hops);
            self.wire = OnceLock::new();
        }
        self
    }

    /// Attaches application parameters. A no-op change keeps the wire cache.
    #[must_use]
    pub fn with_app_parameters(mut self, params: impl Into<Payload>) -> Self {
        let params = params.into();
        if self.app_parameters.as_ref() != Some(&params) {
            self.app_parameters = Some(params);
            self.wire = OnceLock::new();
        }
        self
    }

    /// Decrements the hop limit, returning `false` when exhausted.
    ///
    /// A real decrement changes exactly one byte of the wire image, so a
    /// warm cache is *patched* — the hop-limit value byte rewritten in a
    /// fresh copy of the buffer — rather than dropped and re-encoded. This
    /// is the same copy-on-write transform the decode-free relay fast path
    /// applies to a raw frame, which keeps relayed frames byte-identical
    /// whether or not the Interest was ever materialized. An exhausted
    /// decrement (`Some(0)`) is a no-op and keeps the cache untouched.
    pub fn decrement_hop_limit(&mut self) -> bool {
        match self.hop_limit {
            None => true,
            Some(0) => false,
            Some(h) => {
                self.hop_limit = Some(h - 1);
                if let Some(cached) = self.wire.take() {
                    if let Some(offset) = hop_limit_value_offset(&cached) {
                        let mut bytes = cached.as_slice().to_vec();
                        bytes[offset] = h - 1;
                        let _ = self.wire.set(Payload::from(bytes));
                    }
                }
                h > 1
            }
        }
    }

    /// The wire encoding as a shared buffer, encoded at most once: repeated
    /// calls (and calls on clones made after the first encoding) return the
    /// same allocation.
    pub fn wire(&self) -> Payload {
        self.wire
            .get_or_init(|| Payload::from(self.encode()))
            .clone()
    }

    /// Encodes to wire format, building a fresh buffer. Hot paths should
    /// prefer [`Interest::wire`].
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.app_parameters.as_ref().map_or(0, |p| p.len()));
        encode_name(&mut body, &self.name);
        if self.can_be_prefix {
            tlv::write_tlv(&mut body, types::CAN_BE_PREFIX, &[]);
        }
        if self.must_be_fresh {
            tlv::write_tlv(&mut body, types::MUST_BE_FRESH, &[]);
        }
        tlv::write_tlv(&mut body, types::NONCE, &self.nonce.to_be_bytes());
        tlv::write_nonneg_tlv(&mut body, types::INTEREST_LIFETIME, self.lifetime_ms);
        if let Some(h) = self.hop_limit {
            tlv::write_tlv(&mut body, types::HOP_LIMIT, &[h]);
        }
        if let Some(p) = &self.app_parameters {
            tlv::write_tlv(&mut body, types::APP_PARAMETERS, p);
        }
        let mut out = Vec::with_capacity(body.len() + 4);
        tlv::write_tlv(&mut out, types::INTEREST, &body);
        out
    }

    /// Decodes from wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`TlvError`] on malformed input.
    pub fn decode(wire: &[u8]) -> Result<Self, TlvError> {
        Self::decode_inner(wire, None)
    }

    fn decode_inner(wire: &[u8], backing: Option<&Payload>) -> Result<Self, TlvError> {
        let mut outer = TlvReader::new(wire);
        let body = outer.read_expected(types::INTEREST)?;
        let mut r = TlvReader::new(body);
        let name = decode_name_inner(&mut r, backing)?;
        let mut interest = Interest::new(name);
        while !r.is_at_end() {
            let (typ, value) = r.read_tlv()?;
            match typ {
                types::CAN_BE_PREFIX => interest.can_be_prefix = true,
                types::MUST_BE_FRESH => interest.must_be_fresh = true,
                types::NONCE => {
                    let bytes: [u8; 4] = value
                        .try_into()
                        .map_err(|_| TlvError::BadValue("nonce must be 4 bytes"))?;
                    interest.nonce = u32::from_be_bytes(bytes);
                }
                types::INTEREST_LIFETIME => interest.lifetime_ms = tlv::decode_nonneg(value)?,
                types::HOP_LIMIT => {
                    interest.hop_limit =
                        Some(*value.first().ok_or(TlvError::BadValue("empty hop limit"))?)
                }
                types::APP_PARAMETERS => {
                    interest.app_parameters = Some(match backing {
                        Some(p) => p.view_of(value),
                        None => Payload::copy_from_slice(value),
                    })
                }
                _ => {} // ignore unknown fields
            }
        }
        Ok(interest)
    }

    /// Decodes from a shared buffer with zero payload copies: the
    /// application parameters become a view into `payload`, and the wire
    /// cache is seeded with the received bytes so re-broadcasting the
    /// Interest reuses the incoming frame's allocation.
    ///
    /// # Errors
    ///
    /// Returns a [`TlvError`] on malformed input.
    pub fn decode_payload(payload: &Payload) -> Result<Self, TlvError> {
        let interest = Self::decode_inner(payload, Some(payload))?;
        if whole_buffer_is_one_packet(payload) {
            let _ = interest.wire.set(payload.clone());
        }
        Ok(interest)
    }
}

/// Whether the buffer holds exactly one TLV packet (no trailing bytes), the
/// precondition for caching it as a packet's wire image — and for relaying
/// it by byte patch, which forwards the whole buffer.
pub(crate) fn whole_buffer_is_one_packet(buf: &[u8]) -> bool {
    let mut r = TlvReader::new(buf);
    r.read_tlv().is_ok() && r.is_at_end()
}

/// Byte offset, within a full Interest wire image, of the value byte of its
/// hop-limit TLV (last occurrence, as in decode) — the single byte a relay
/// rewrites. `None` when the packet has no hop limit, when the winning
/// encoding is non-canonical (multi-byte, so a patch would not match a
/// re-encode), or when the buffer is not a well-formed Interest.
pub(crate) fn hop_limit_value_offset(wire: &[u8]) -> Option<usize> {
    let base = wire.as_ptr() as usize;
    let mut outer = TlvReader::new(wire);
    let body = outer.read_expected(types::INTEREST).ok()?;
    let mut r = TlvReader::new(body);
    let mut found = None;
    while !r.is_at_end() {
        let (typ, value) = r.read_tlv().ok()?;
        if typ == types::HOP_LIMIT {
            // Last occurrence wins, exactly as in `Interest::decode`.
            found = match value {
                [_] => Some(value.as_ptr() as usize - base),
                _ => None,
            };
        }
    }
    found
}

/// A hop-limit field as seen by [`Packet::peek_header`]: just enough for a
/// relay to rewrite the hop count in a copied frame without decoding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PeekedHopLimit {
    /// No HopLimit TLV: the frame relays unchanged.
    #[default]
    Absent,
    /// A canonical one-byte HopLimit: `value` lives at byte `offset` of the
    /// peeked frame, so a relay can copy the buffer once and rewrite that
    /// single byte.
    Patchable {
        /// The remaining hop count.
        value: u8,
        /// Byte offset of the value within the peeked frame.
        offset: usize,
    },
    /// A non-canonical (multi-byte) encoding: a byte patch would not equal
    /// decode→decrement→re-encode, so relays must take the full-decode
    /// path.
    Opaque,
}

/// The name-first prefix of an Interest, produced by [`Packet::peek_header`]
/// without decoding hop limit or application parameters — and without
/// building a [`Name`]: the name stays a borrowed slice of the frame's
/// encoded bytes until [`InterestHeader::to_name`] is called.
#[derive(Clone, Copy, Debug)]
pub struct InterestHeader<'a> {
    /// The name's TLV value region (concatenated component TLVs), borrowed
    /// from the frame. Comparable against [`Name::to_wire_value`] keys and
    /// [`Name::wire_value_eq`] without allocation.
    pub name_wire: &'a [u8],
    /// Whether extending names may satisfy the Interest.
    pub can_be_prefix: bool,
    /// Whether only fresh Data may satisfy it.
    pub must_be_fresh: bool,
    /// The duplicate-suppression nonce (0 when absent, as in full decode).
    pub nonce: u32,
    /// InterestLifetime in milliseconds ([`Interest::DEFAULT_LIFETIME_MS`]
    /// when absent, as in full decode). Lets the header-only pipeline record
    /// a PIT entry with the exact expiry the full pipeline would.
    pub lifetime_ms: u64,
    /// The hop-limit field, captured with its byte offset so a forwarding
    /// decision can relay the frame by copy-on-write byte patch.
    pub hop_limit: PeekedHopLimit,
}

impl InterestHeader<'_> {
    /// Materializes the name, with components as zero-copy views into
    /// `backing` (the frame the header was peeked from).
    ///
    /// # Errors
    ///
    /// Returns a [`TlvError`] when the name region is malformed (peeking
    /// defers component validation to this point).
    pub fn to_name(&self, backing: &Payload) -> Result<Name, TlvError> {
        decode_name_value_counted(self.name_wire, backing)
    }
}

/// The name-first prefix of a Data packet, produced by
/// [`Packet::peek_header`] without touching MetaInfo, Content or signature.
#[derive(Clone, Copy, Debug)]
pub struct DataHeader<'a> {
    /// The name's TLV value region, borrowed from the frame.
    pub name_wire: &'a [u8],
}

impl DataHeader<'_> {
    /// Materializes the name, with components as zero-copy views into
    /// `backing` (the frame the header was peeked from).
    ///
    /// # Errors
    ///
    /// Returns a [`TlvError`] when the name region is malformed.
    pub fn to_name(&self, backing: &Payload) -> Result<Name, TlvError> {
        decode_name_value_counted(self.name_wire, backing)
    }
}

/// A peeked packet prefix: just enough to route an overheard frame.
#[derive(Clone, Copy, Debug)]
pub enum PacketHeader<'a> {
    /// An Interest's type + name + flags + nonce.
    Interest(InterestHeader<'a>),
    /// A Data packet's type + name.
    Data(DataHeader<'a>),
}

impl<'a> PacketHeader<'a> {
    /// The peeked packet's name TLV value region.
    pub fn name_wire(&self) -> &'a [u8] {
        match self {
            PacketHeader::Interest(h) => h.name_wire,
            PacketHeader::Data(h) => h.name_wire,
        }
    }
}

/// Content type of a Data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ContentType {
    /// Ordinary application payload.
    #[default]
    Blob,
    /// Link/redirect (unused here, kept for spec shape).
    Link,
    /// Application-level NACK.
    Nack,
}

impl ContentType {
    fn to_num(self) -> u64 {
        match self {
            ContentType::Blob => 0,
            ContentType::Link => 1,
            ContentType::Nack => 3,
        }
    }

    fn from_num(n: u64) -> Self {
        match n {
            1 => ContentType::Link,
            3 => ContentType::Nack,
            _ => ContentType::Blob,
        }
    }
}

/// A Data packet: named, signed content.
///
/// # Examples
///
/// ```
/// use dapes_ndn::packet::Data;
/// use dapes_ndn::name::Name;
/// use dapes_crypto::signing::TrustAnchor;
///
/// let anchor = TrustAnchor::from_seed(b"anchor");
/// let key = anchor.keypair("producer");
/// let data = Data::new(Name::from_uri("/col/file/0"), b"payload".to_vec()).signed(&key);
/// assert!(data.verify(&anchor));
/// let wire = data.encode();
/// let back = Data::decode(&wire).expect("round trip");
/// assert!(back.verify(&anchor));
/// ```
#[derive(Debug)]
pub struct Data {
    name: Name,
    content_type: ContentType,
    freshness_ms: u64,
    /// Shared buffer: cloning Data (per PIT downstream, per CS insert) does
    /// not copy the payload.
    content: Payload,
    signature: Option<Signature>,
    /// Encode-once cache; never compared, cloned by reference.
    wire: OnceLock<Payload>,
}

impl Clone for Data {
    fn clone(&self) -> Self {
        Data {
            name: self.name.clone(),
            content_type: self.content_type,
            freshness_ms: self.freshness_ms,
            content: self.content.clone(),
            signature: self.signature.clone(),
            wire: clone_cache(&self.wire),
        }
    }
}

impl PartialEq for Data {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.content_type == other.content_type
            && self.freshness_ms == other.freshness_ms
            && self.content == other.content
            && self.signature == other.signature
    }
}

impl Eq for Data {}

impl Data {
    /// Creates unsigned Data with the given name and content.
    pub fn new(name: Name, content: impl Into<Payload>) -> Self {
        Data {
            name,
            content_type: ContentType::Blob,
            freshness_ms: 0,
            content: content.into(),
            signature: None,
            wire: OnceLock::new(),
        }
    }

    /// The data name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The payload.
    pub fn content(&self) -> &[u8] {
        &self.content
    }

    /// The content type.
    pub fn content_type(&self) -> ContentType {
        self.content_type
    }

    /// Freshness period in milliseconds.
    pub fn freshness_ms(&self) -> u64 {
        self.freshness_ms
    }

    /// The signature, if the packet is signed.
    pub fn signature(&self) -> Option<&Signature> {
        self.signature.as_ref()
    }

    /// Sets the content type.
    #[must_use]
    pub fn with_content_type(mut self, t: ContentType) -> Self {
        self.content_type = t;
        self.wire = OnceLock::new();
        self
    }

    /// Sets the freshness period.
    #[must_use]
    pub fn with_freshness_ms(mut self, ms: u64) -> Self {
        self.freshness_ms = ms;
        self.wire = OnceLock::new();
        self
    }

    /// Signs the packet, consuming and returning it.
    #[must_use]
    pub fn signed(mut self, signer: &dyn Signer) -> Self {
        let portion = self.signed_portion(signer.key_id());
        self.signature = Some(signer.sign(&portion));
        self.wire = OnceLock::new();
        self
    }

    /// Verifies the signature against a verifier (e.g. the trust anchor).
    ///
    /// Unsigned packets never verify.
    pub fn verify(&self, verifier: &dyn Verifier) -> bool {
        match &self.signature {
            None => false,
            Some(sig) => {
                let portion = self.signed_portion(sig.key_id);
                verifier.verify_signature(&portion, sig)
            }
        }
    }

    /// SHA-256 over the full encoded packet — NDN's "implicit digest",
    /// which DAPES metadata uses as the per-packet digest.
    pub fn implicit_digest(&self) -> Digest {
        sha256(&self.wire())
    }

    /// SHA-256 of just the content, used by the packet-digest metadata
    /// format to validate payloads before signature checking.
    pub fn content_digest(&self) -> Digest {
        sha256(&self.content)
    }

    /// The signed portion: Name, MetaInfo, Content, SignatureInfo.
    fn signed_portion(&self, key_id: KeyId) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.content.len() + 64);
        encode_name(&mut body, &self.name);
        self.encode_meta_info(&mut body);
        tlv::write_tlv(&mut body, types::CONTENT, &self.content);
        self.encode_signature_info(&mut body, key_id);
        body
    }

    fn encode_meta_info(&self, out: &mut Vec<u8>) {
        let mut meta = Vec::new();
        if self.content_type != ContentType::Blob {
            tlv::write_nonneg_tlv(&mut meta, types::CONTENT_TYPE, self.content_type.to_num());
        }
        if self.freshness_ms > 0 {
            tlv::write_nonneg_tlv(&mut meta, types::FRESHNESS_PERIOD, self.freshness_ms);
        }
        tlv::write_tlv(out, types::META_INFO, &meta);
    }

    fn encode_signature_info(&self, out: &mut Vec<u8>, key_id: KeyId) {
        let mut info = Vec::new();
        // SignatureType 4 = "HMAC with SHA-256" in the NDN registry.
        tlv::write_nonneg_tlv(&mut info, types::SIGNATURE_TYPE, 4);
        tlv::write_tlv(&mut info, types::KEY_LOCATOR, &key_id.0.to_be_bytes());
        tlv::write_tlv(out, types::SIGNATURE_INFO, &info);
    }

    /// The wire encoding as a shared buffer, encoded at most once: repeated
    /// calls (and calls on clones made after the first encoding, e.g. the
    /// copy a Content Store hit hands back) return the same allocation.
    pub fn wire(&self) -> Payload {
        self.wire
            .get_or_init(|| Payload::from(self.encode()))
            .clone()
    }

    /// Encodes to wire format, building a fresh buffer. Hot paths should
    /// prefer [`Data::wire`].
    pub fn encode(&self) -> Vec<u8> {
        let key_id = self.signature.as_ref().map_or(KeyId(0), |s| s.key_id);
        let mut body = self.signed_portion(key_id);
        let sig_bytes = self
            .signature
            .as_ref()
            .map_or_else(Vec::new, Signature::to_bytes);
        tlv::write_tlv(&mut body, types::SIGNATURE_VALUE, &sig_bytes);
        let mut out = Vec::with_capacity(body.len() + 4);
        tlv::write_tlv(&mut out, types::DATA, &body);
        out
    }

    /// Decodes from wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`TlvError`] on malformed input.
    pub fn decode(wire: &[u8]) -> Result<Self, TlvError> {
        Self::decode_inner(wire, None)
    }

    fn decode_inner(wire: &[u8], backing: Option<&Payload>) -> Result<Self, TlvError> {
        let mut outer = TlvReader::new(wire);
        let body = outer.read_expected(types::DATA)?;
        let mut r = TlvReader::new(body);
        let name = decode_name_inner(&mut r, backing)?;
        let mut data = Data::new(name, Vec::new());
        while !r.is_at_end() {
            let (typ, value) = r.read_tlv()?;
            match typ {
                types::META_INFO => {
                    let mut m = TlvReader::new(value);
                    while !m.is_at_end() {
                        let (mt, mv) = m.read_tlv()?;
                        match mt {
                            types::CONTENT_TYPE => {
                                data.content_type = ContentType::from_num(tlv::decode_nonneg(mv)?)
                            }
                            types::FRESHNESS_PERIOD => data.freshness_ms = tlv::decode_nonneg(mv)?,
                            _ => {}
                        }
                    }
                }
                types::CONTENT => {
                    data.content = match backing {
                        Some(p) => p.view_of(value),
                        None => Payload::copy_from_slice(value),
                    }
                }
                types::SIGNATURE_INFO => {} // key id is inside SignatureValue too
                types::SIGNATURE_VALUE => {
                    data.signature = if value.is_empty() {
                        None
                    } else {
                        Some(
                            Signature::from_bytes(value)
                                .ok_or(TlvError::BadValue("bad signature length"))?,
                        )
                    };
                }
                _ => {}
            }
        }
        Ok(data)
    }

    /// Decodes from a shared buffer with zero payload copies: the content
    /// field becomes a view into `payload`, and the wire cache is seeded
    /// with the received bytes so re-broadcasting or cache-serving the
    /// Data reuses the incoming frame's allocation.
    ///
    /// # Errors
    ///
    /// Returns a [`TlvError`] on malformed input.
    pub fn decode_payload(payload: &Payload) -> Result<Self, TlvError> {
        let data = Self::decode_inner(payload, Some(payload))?;
        if whole_buffer_is_one_packet(payload) {
            let _ = data.wire.set(payload.clone());
        }
        Ok(data)
    }

    /// Wire size without re-encoding once the cache is warm.
    pub fn wire_size(&self) -> usize {
        self.wire().len()
    }
}

/// Packet kinds that can arrive from the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet {
    /// An Interest.
    Interest(Interest),
    /// A Data packet.
    Data(Data),
}

impl Packet {
    /// Decodes either packet type by its outer TLV.
    ///
    /// # Errors
    ///
    /// Returns a [`TlvError`] for unknown outer types or malformed input.
    pub fn decode(wire: &[u8]) -> Result<Self, TlvError> {
        let r = TlvReader::new(wire);
        match r.peek_type()? {
            types::INTEREST => Ok(Packet::Interest(Interest::decode(wire)?)),
            types::DATA => Ok(Packet::Data(Data::decode(wire)?)),
            other => Err(TlvError::UnexpectedType {
                expected: types::INTEREST,
                found: other,
            }),
        }
    }

    /// Decodes either packet type from a shared buffer, seeding the packet's
    /// wire cache with the received bytes (zero-copy re-broadcast).
    ///
    /// # Errors
    ///
    /// Returns a [`TlvError`] for unknown outer types or malformed input.
    pub fn decode_payload(payload: &Payload) -> Result<Self, TlvError> {
        let r = TlvReader::new(payload);
        match r.peek_type()? {
            types::INTEREST => Ok(Packet::Interest(Interest::decode_payload(payload)?)),
            types::DATA => Ok(Packet::Data(Data::decode_payload(payload)?)),
            other => Err(TlvError::UnexpectedType {
                expected: types::INTEREST,
                found: other,
            }),
        }
    }

    /// Decodes only the packet's routable prefix — type and name, plus the
    /// CanBePrefix/MustBeFresh flags and nonce for Interests — as zero-copy
    /// borrows of `payload`, stopping before the expensive tail (MetaInfo,
    /// Content, signature, application parameters) and *without building a
    /// [`Name`]*: the name stays the raw slice of its TLV value region,
    /// directly comparable against the PIT/CS wire indexes.
    ///
    /// This is the overhearing fast path: a forwarder can resolve the common
    /// outcomes of a frame it was not addressed by — Content Store hit,
    /// duplicate nonce, no PIT match, not-for-me — from the header alone,
    /// and fall through to [`Packet::decode_payload`] only when the packet
    /// is actually consumed. Every error `peek_header` can return (truncated
    /// or malformed framing, a bad nonce/lifetime value) would also fail the
    /// full decode at the same byte, so dropping a frame on a peek error
    /// never diverges from the eager pipeline. The converse does not hold —
    /// a Data frame with a valid name and a garbage tail peeks fine, and
    /// component-level validation inside the name region is deferred to
    /// [`InterestHeader::to_name`] / [`DataHeader::to_name`] (a malformed
    /// region can never byte-match a wire-index key, which only ever holds
    /// canonical encodings of valid names, so deferral cannot misroute).
    ///
    /// # Errors
    ///
    /// Returns a [`TlvError`] for unknown outer types or a malformed
    /// type/name/nonce prefix.
    pub fn peek_header(payload: &Payload) -> Result<PacketHeader<'_>, TlvError> {
        let mut outer = TlvReader::new(payload);
        match outer.peek_type()? {
            types::INTEREST => {
                let body = outer.read_expected(types::INTEREST)?;
                let mut r = TlvReader::new(body);
                let mut header = InterestHeader {
                    name_wire: r.read_expected(types::NAME)?,
                    can_be_prefix: false,
                    must_be_fresh: false,
                    nonce: 0,
                    lifetime_ms: Interest::DEFAULT_LIFETIME_MS,
                    hop_limit: PeekedHopLimit::Absent,
                };
                // Walk every remaining TLV exactly as the full decode does
                // (unknown fields skipped, repeated fields last-wins, any
                // field order accepted) so the peeked nonce, lifetime and
                // hop limit can never disagree with `Interest::decode`'s.
                // Values other than the flags/nonce/lifetime/hop-limit are
                // sliced over, not parsed — the heavy tail (application
                // parameters) stays lazy.
                while !r.is_at_end() {
                    let (typ, value) = r.read_tlv()?;
                    match typ {
                        types::CAN_BE_PREFIX => header.can_be_prefix = true,
                        types::MUST_BE_FRESH => header.must_be_fresh = true,
                        types::NONCE => {
                            let bytes: [u8; 4] = value
                                .try_into()
                                .map_err(|_| TlvError::BadValue("nonce must be 4 bytes"))?;
                            header.nonce = u32::from_be_bytes(bytes);
                        }
                        types::INTEREST_LIFETIME => {
                            header.lifetime_ms = tlv::decode_nonneg(value)?;
                        }
                        types::HOP_LIMIT => {
                            // Last occurrence wins, as in the full decode —
                            // which errors on an empty value, so erroring
                            // here preserves the peek⊆decode error contract.
                            header.hop_limit = match value {
                                [] => return Err(TlvError::BadValue("empty hop limit")),
                                [v] => PeekedHopLimit::Patchable {
                                    value: *v,
                                    offset: value.as_ptr() as usize - payload.as_ptr() as usize,
                                },
                                _ => PeekedHopLimit::Opaque,
                            };
                        }
                        _ => {}
                    }
                }
                Ok(PacketHeader::Interest(header))
            }
            types::DATA => {
                let body = outer.read_expected(types::DATA)?;
                let mut r = TlvReader::new(body);
                Ok(PacketHeader::Data(DataHeader {
                    name_wire: r.read_expected(types::NAME)?,
                }))
            }
            other => Err(TlvError::UnexpectedType {
                expected: types::INTEREST,
                found: other,
            }),
        }
    }

    /// Encodes whichever packet this is.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Packet::Interest(i) => i.encode(),
            Packet::Data(d) => d.encode(),
        }
    }

    /// The cached wire encoding of whichever packet this is.
    pub fn wire(&self) -> Payload {
        match self {
            Packet::Interest(i) => i.wire(),
            Packet::Data(d) => d.wire(),
        }
    }

    /// The packet's name.
    pub fn name(&self) -> &Name {
        match self {
            Packet::Interest(i) => i.name(),
            Packet::Data(d) => d.name(),
        }
    }
}

pub(crate) fn encode_name(out: &mut Vec<u8>, name: &Name) {
    let mut body = Vec::new();
    for c in name.components() {
        tlv::write_tlv(&mut body, types::NAME_COMPONENT, c.as_bytes());
    }
    tlv::write_tlv(out, types::NAME, &body);
}

/// Decodes a Name; with a `backing` payload, each component is a zero-copy
/// view into the received frame instead of a fresh allocation.
fn decode_name_inner(r: &mut TlvReader<'_>, backing: Option<&Payload>) -> Result<Name, TlvError> {
    decode_name_value(r.read_expected(types::NAME)?, backing)
}

/// Decodes a Name from its TLV value region (the borrowed slice a peeked
/// header carries).
fn decode_name_value(value: &[u8], backing: Option<&Payload>) -> Result<Name, TlvError> {
    let mut nr = TlvReader::new(value);
    let mut components = Vec::new();
    while !nr.is_at_end() {
        let (typ, value) = nr.read_tlv()?;
        // Treat all component types as generic; we only emit 0x08.
        let _ = typ;
        components.push(match backing {
            Some(p) => Component::from_payload(p.view_of(value)),
            None => Component::from_bytes(value.to_vec()),
        });
    }
    Ok(Name::from_components(components))
}

/// [`decode_name_value`] for the peek ladder's commit points: a first TLV
/// walk counts the components so the vector is allocated exactly once —
/// the decode-free pipeline materializes a `Name` on every relay/suppress
/// commit, so the incremental-growth reallocations are measurable there.
fn decode_name_value_counted(value: &[u8], backing: &Payload) -> Result<Name, TlvError> {
    let mut nr = TlvReader::new(value);
    let mut count = 0usize;
    while !nr.is_at_end() {
        nr.read_tlv()?;
        count += 1;
    }
    let mut nr = TlvReader::new(value);
    let mut components = Vec::with_capacity(count);
    while !nr.is_at_end() {
        let (_, value) = nr.read_tlv()?;
        components.push(Component::from_payload(backing.view_of(value)));
    }
    Ok(Name::from_components(components))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapes_crypto::signing::TrustAnchor;

    fn name() -> Name {
        Name::from_uri("/damaged-bridge-1533783192/bridge-picture/0")
    }

    #[test]
    fn interest_round_trip_full() {
        let i = Interest::new(name())
            .with_can_be_prefix(true)
            .with_must_be_fresh(true)
            .with_nonce(0xdead_beef)
            .with_lifetime_ms(2_500)
            .with_hop_limit(5)
            .with_app_parameters(vec![9, 8, 7]);
        let wire = i.encode();
        let back = Interest::decode(&wire).expect("decode");
        assert_eq!(back, i);
    }

    #[test]
    fn interest_round_trip_minimal() {
        let i = Interest::new(Name::from_uri("/a")).with_nonce(1);
        let back = Interest::decode(&i.encode()).expect("decode");
        assert_eq!(back, i);
        assert!(!back.can_be_prefix());
        assert_eq!(back.lifetime_ms(), Interest::DEFAULT_LIFETIME_MS);
        assert_eq!(back.hop_limit(), None);
        assert_eq!(back.app_parameters(), None);
    }

    #[test]
    fn data_round_trip_signed() {
        let anchor = TrustAnchor::from_seed(b"a");
        let key = anchor.keypair("p");
        let d = Data::new(name(), vec![1; 1024])
            .with_freshness_ms(10_000)
            .signed(&key);
        let wire = d.encode();
        let back = Data::decode(&wire).expect("decode");
        assert_eq!(back, d);
        assert!(back.verify(&anchor));
    }

    #[test]
    fn unsigned_data_never_verifies() {
        let anchor = TrustAnchor::from_seed(b"a");
        let d = Data::new(name(), vec![1, 2, 3]);
        assert!(!d.verify(&anchor));
    }

    #[test]
    fn tampered_content_fails_verification() {
        let anchor = TrustAnchor::from_seed(b"a");
        let key = anchor.keypair("p");
        let d = Data::new(name(), b"original".to_vec()).signed(&key);
        let mut wire = d.encode();
        // Flip a byte inside the content region.
        let pos = wire
            .windows(8)
            .position(|w| w == b"original")
            .expect("content present");
        wire[pos] ^= 0x01;
        let back = Data::decode(&wire).expect("still well-formed");
        assert!(!back.verify(&anchor));
    }

    #[test]
    fn tampered_name_fails_verification() {
        let anchor = TrustAnchor::from_seed(b"a");
        let key = anchor.keypair("p");
        let d = Data::new(Name::from_uri("/col/file/0"), b"x".to_vec()).signed(&key);
        let mut wire = d.encode();
        let pos = wire
            .windows(3)
            .position(|w| w == b"col")
            .expect("name present");
        wire[pos] = b'k';
        let back = Data::decode(&wire).expect("well-formed");
        assert_eq!(back.name().to_string(), "/kol/file/0");
        assert!(!back.verify(&anchor));
    }

    #[test]
    fn packet_dispatches_by_outer_type() {
        let i = Interest::new(name()).with_nonce(7);
        let d = Data::new(name(), vec![1]);
        assert!(matches!(
            Packet::decode(&i.encode()),
            Ok(Packet::Interest(_))
        ));
        assert!(matches!(Packet::decode(&d.encode()), Ok(Packet::Data(_))));
        assert!(Packet::decode(&[0x99, 0x00]).is_err());
    }

    #[test]
    fn hop_limit_decrements_to_exhaustion() {
        let mut i = Interest::new(name()).with_hop_limit(2);
        assert!(i.decrement_hop_limit());
        assert_eq!(i.hop_limit(), Some(1));
        assert!(!i.decrement_hop_limit());
        assert_eq!(i.hop_limit(), Some(0));
        assert!(!i.decrement_hop_limit());
        let mut unlimited = Interest::new(name());
        assert!(unlimited.decrement_hop_limit());
    }

    #[test]
    fn implicit_digest_changes_with_content() {
        let d1 = Data::new(name(), vec![1]);
        let d2 = Data::new(name(), vec![2]);
        assert_ne!(d1.implicit_digest(), d2.implicit_digest());
    }

    #[test]
    fn one_kb_data_wire_size_is_realistic() {
        let anchor = TrustAnchor::from_seed(b"a");
        let key = anchor.keypair("p");
        let d = Data::new(name(), vec![0; 1024]).signed(&key);
        let size = d.encode().len();
        // name (~45) + content (1024) + signature (40) + TLV overhead.
        assert!((1100..1250).contains(&size), "wire size {size}");
    }

    #[test]
    fn empty_name_round_trips() {
        let i = Interest::new(Name::root()).with_nonce(3);
        let back = Interest::decode(&i.encode()).expect("decode");
        assert_eq!(back.name(), &Name::root());
    }

    #[test]
    fn wire_cache_encodes_once_and_clones_share_it() {
        let d = Data::new(name(), vec![7; 256]);
        let w1 = d.wire();
        let w2 = d.wire();
        assert!(Payload::ptr_eq(&w1, &w2), "second wire() re-encoded");
        let c = d.clone();
        assert!(
            Payload::ptr_eq(&w1, &c.wire()),
            "clone must share the cached wire"
        );
        assert_eq!(&*w1, &d.encode()[..], "cache matches a fresh encoding");
    }

    #[test]
    fn decode_payload_seeds_cache_with_received_bytes() {
        let d = Data::new(name(), vec![1; 64]);
        let incoming = Payload::from(d.encode());
        let back = Data::decode_payload(&incoming).expect("decode");
        assert!(
            Payload::ptr_eq(&incoming, &back.wire()),
            "re-broadcast must reuse the received buffer"
        );
        let i = Interest::new(name()).with_nonce(4);
        let incoming = Payload::from(i.encode());
        let back = Interest::decode_payload(&incoming).expect("decode");
        assert!(Payload::ptr_eq(&incoming, &back.wire()));
    }

    #[test]
    fn decode_payload_content_is_a_zero_copy_view() {
        let d = Data::new(name(), vec![42; 512]);
        let incoming = Payload::from(d.encode());
        let back = Data::decode_payload(&incoming).expect("decode");
        assert_eq!(back.content(), &[42u8; 512][..]);
        let content_view = incoming.view_of(back.content());
        assert!(
            Payload::same_backing(&incoming, &content_view),
            "content must borrow from the received frame"
        );
        // Plain decode from a bare slice still owns its content.
        let owned = Data::decode(&incoming).expect("decode");
        assert_eq!(owned, back);
    }

    #[test]
    fn decode_payload_with_trailing_bytes_does_not_seed_cache() {
        let d = Data::new(name(), vec![1; 8]);
        let mut wire = d.encode();
        wire.extend_from_slice(&[0x99, 0x00]); // trailing unknown TLV
        let buf = Payload::from(wire);
        let back = Data::decode_payload(&buf).expect("outer TLV still parses");
        assert!(
            !Payload::ptr_eq(&buf, &back.wire()),
            "a buffer with trailing bytes is not this packet's wire image"
        );
        assert_eq!(back, d);
    }

    #[test]
    fn hop_limit_decrement_invalidates_cache() {
        let mut i = Interest::new(name()).with_nonce(1).with_hop_limit(3);
        let before = i.wire();
        assert!(i.decrement_hop_limit());
        let after = i.wire();
        assert!(!Payload::ptr_eq(&before, &after));
        assert_eq!(
            Interest::decode(&after).expect("decode").hop_limit(),
            Some(2),
            "re-encoding must reflect the decrement"
        );
        // Exhausted decrements change nothing and keep the cache.
        let mut z = Interest::new(name()).with_hop_limit(0);
        let w = z.wire();
        assert!(!z.decrement_hop_limit());
        assert!(Payload::ptr_eq(&w, &z.wire()));
    }

    #[test]
    fn hop_limit_decrement_patches_a_warm_cache_byte_for_byte() {
        // The decrement must rewrite exactly one byte of the cached image
        // (the copy-on-write relay transform), and the result must equal a
        // fresh decode→decrement→encode.
        let i = Interest::new(name())
            .with_nonce(0xfeed_f00d)
            .with_hop_limit(7)
            .with_app_parameters(vec![5; 128]);
        let incoming = Payload::from(i.encode());
        let mut relayed = Interest::decode_payload(&incoming).expect("decode");
        assert!(relayed.decrement_hop_limit());
        let patched = relayed.wire();
        let diffs: Vec<usize> = incoming
            .iter()
            .zip(patched.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(at, _)| at)
            .collect();
        assert_eq!(diffs.len(), 1, "exactly one byte must change");
        assert_eq!(patched[diffs[0]], 6);
        assert_eq!(
            &*patched,
            &i.with_hop_limit(6).encode()[..],
            "patched image must equal a fresh encode of the decrement"
        );
    }

    #[test]
    fn no_op_mutations_keep_the_wire_cache() {
        let i = Interest::new(name())
            .with_can_be_prefix(true)
            .with_nonce(9)
            .with_lifetime_ms(1_000)
            .with_hop_limit(4)
            .with_app_parameters(vec![1, 2, 3]);
        let before = i.wire();
        let same = i
            .with_can_be_prefix(true)
            .with_must_be_fresh(false)
            .with_nonce(9)
            .with_lifetime_ms(1_000)
            .with_hop_limit(4)
            .with_app_parameters(vec![1, 2, 3]);
        assert!(
            Payload::ptr_eq(&before, &same.wire()),
            "no-op mutations must not invalidate the encode-once cache"
        );
        let changed = same.with_nonce(10);
        assert!(!Payload::ptr_eq(&before, &changed.wire()));
    }

    #[test]
    fn peek_hop_limit_mirrors_decode_including_non_canonical_forms() {
        // Absent.
        let plain = Interest::new(name()).with_nonce(1);
        let buf = Payload::from(plain.encode());
        let Ok(PacketHeader::Interest(h)) = Packet::peek_header(&buf) else {
            panic!("peek must classify an Interest");
        };
        assert_eq!(h.hop_limit, PeekedHopLimit::Absent);

        // Multi-byte (non-canonical) value: decode succeeds taking the
        // first byte, but a byte patch would not match a re-encode, so the
        // peek must flag it opaque rather than patchable.
        let mut body = Vec::new();
        encode_name(&mut body, &name());
        tlv::write_tlv(&mut body, types::NONCE, &7u32.to_be_bytes());
        tlv::write_tlv(&mut body, types::HOP_LIMIT, &[3, 9]);
        let mut wire = Vec::new();
        tlv::write_tlv(&mut wire, types::INTEREST, &body);
        let buf = Payload::from(wire);
        assert_eq!(
            Interest::decode(&buf).expect("decode accepts").hop_limit(),
            Some(3)
        );
        let Ok(PacketHeader::Interest(h)) = Packet::peek_header(&buf) else {
            panic!("peek must classify an Interest");
        };
        assert_eq!(h.hop_limit, PeekedHopLimit::Opaque);
        assert_eq!(hop_limit_value_offset(&buf), None);

        // Empty value: both the peek and the full decode must reject it.
        let mut body = Vec::new();
        encode_name(&mut body, &name());
        tlv::write_tlv(&mut body, types::NONCE, &7u32.to_be_bytes());
        tlv::write_tlv(&mut body, types::HOP_LIMIT, &[]);
        let mut wire = Vec::new();
        tlv::write_tlv(&mut wire, types::INTEREST, &body);
        let buf = Payload::from(wire);
        assert!(Interest::decode(&buf).is_err());
        assert!(Packet::peek_header(&buf).is_err());

        // Repeated fields: last occurrence wins, as in decode.
        let mut body = Vec::new();
        encode_name(&mut body, &name());
        tlv::write_tlv(&mut body, types::NONCE, &7u32.to_be_bytes());
        tlv::write_tlv(&mut body, types::HOP_LIMIT, &[3, 9]);
        tlv::write_tlv(&mut body, types::HOP_LIMIT, &[4]);
        let mut wire = Vec::new();
        tlv::write_tlv(&mut wire, types::INTEREST, &body);
        let buf = Payload::from(wire);
        let Ok(PacketHeader::Interest(h)) = Packet::peek_header(&buf) else {
            panic!("peek must classify an Interest");
        };
        let PeekedHopLimit::Patchable { value: 4, offset } = h.hop_limit else {
            panic!("last canonical hop limit must win: {:?}", h.hop_limit);
        };
        assert_eq!(hop_limit_value_offset(&buf), Some(offset));
    }

    #[test]
    fn equality_ignores_wire_cache_state() {
        let a = Data::new(name(), vec![3; 16]);
        let b = a.clone();
        let _ = a.wire(); // warm only one side
        assert_eq!(a, b);
        let i = Interest::new(name()).with_nonce(9);
        let j = i.clone();
        let _ = j.wire();
        assert_eq!(i, j);
    }

    #[test]
    fn packet_decode_payload_dispatches_and_seeds() {
        let d = Data::new(name(), vec![1]);
        let buf = Payload::from(d.encode());
        let p = Packet::decode_payload(&buf).expect("decode");
        assert!(Payload::ptr_eq(&buf, &p.wire()));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Interest::decode(&[1, 2, 3]).is_err());
        assert!(Data::decode(&[]).is_err());
        assert!(Data::decode(&Interest::new(name()).encode()).is_err());
    }

    #[test]
    fn peek_header_reads_interest_prefix_only() {
        let i = Interest::new(name())
            .with_can_be_prefix(true)
            .with_must_be_fresh(true)
            .with_nonce(0xdead_beef)
            .with_lifetime_ms(2_500)
            .with_hop_limit(5)
            .with_app_parameters(vec![9; 2048]);
        let buf = Payload::from(i.encode());
        let Ok(PacketHeader::Interest(h)) = Packet::peek_header(&buf) else {
            panic!("peek must classify an Interest");
        };
        assert_eq!(h.name_wire, &i.name().to_wire_value()[..]);
        assert!(i.name().wire_value_eq(h.name_wire));
        assert!(h.can_be_prefix && h.must_be_fresh);
        assert_eq!(h.nonce, 0xdead_beef);
        assert_eq!(h.lifetime_ms, 2_500);
        let PeekedHopLimit::Patchable { value, offset } = h.hop_limit else {
            panic!("canonical hop limit must peek as patchable");
        };
        assert_eq!(value, 5);
        assert_eq!(buf[offset], 5, "offset must address the hop-limit byte");
        assert_eq!(&h.to_name(&buf).expect("valid name"), i.name());

        // Lifetime defaults exactly as the full decode does when absent.
        let minimal = Interest::new(Name::from_uri("/a")).with_nonce(1);
        let mut body = Vec::new();
        encode_name(&mut body, minimal.name());
        tlv::write_tlv(&mut body, types::NONCE, &1u32.to_be_bytes());
        let mut wire = Vec::new();
        tlv::write_tlv(&mut wire, types::INTEREST, &body);
        let buf = Payload::from(wire);
        let Ok(PacketHeader::Interest(h)) = Packet::peek_header(&buf) else {
            panic!("peek must classify an Interest");
        };
        assert_eq!(h.lifetime_ms, Interest::DEFAULT_LIFETIME_MS);
    }

    #[test]
    fn peek_header_agrees_with_decode_on_non_canonical_field_order() {
        // Our encoder always writes canonical order, but the decoder
        // accepts any order (and last-wins on repeats); the peek must
        // report exactly what the decode would, or the header pipelines
        // could record divergent PIT state.
        let mut body = Vec::new();
        encode_name(&mut body, &name());
        tlv::write_tlv(&mut body, types::HOP_LIMIT, &[3]); // before nonce
        tlv::write_tlv(&mut body, types::NONCE, &7u32.to_be_bytes());
        tlv::write_tlv(&mut body, types::APP_PARAMETERS, &[9; 32]);
        tlv::write_nonneg_tlv(&mut body, types::INTEREST_LIFETIME, 50); // after params
        tlv::write_tlv(&mut body, types::NONCE, &8u32.to_be_bytes()); // repeat: last wins
        let mut wire = Vec::new();
        tlv::write_tlv(&mut wire, types::INTEREST, &body);
        let buf = Payload::from(wire);
        let decoded = Interest::decode(&buf).expect("decoder is order-agnostic");
        let Ok(PacketHeader::Interest(h)) = Packet::peek_header(&buf) else {
            panic!("peek must classify an Interest");
        };
        assert_eq!(h.nonce, decoded.nonce());
        assert_eq!(h.nonce, 8);
        assert_eq!(h.lifetime_ms, decoded.lifetime_ms());
        assert_eq!(h.lifetime_ms, 50);
    }

    #[test]
    fn peek_header_name_is_a_zero_copy_view() {
        let d = Data::new(name(), vec![1; 512]);
        let buf = Payload::from(d.encode());
        let Ok(PacketHeader::Data(h)) = Packet::peek_header(&buf) else {
            panic!("peek must classify Data");
        };
        // The borrowed slice lives inside the frame…
        let view = buf.view_of(h.name_wire);
        assert!(
            Payload::same_backing(&buf, &view),
            "peeked name must borrow from the frame"
        );
        // …and materializing it yields zero-copy component views.
        let materialized = h.to_name(&buf).expect("valid name");
        assert_eq!(&materialized, d.name());
        for c in materialized.components() {
            let view = buf.view_of(c.as_bytes());
            assert!(
                Payload::same_backing(&buf, &view),
                "materialized components must borrow from the frame"
            );
        }
    }

    #[test]
    fn peek_header_rejects_truncated_tlv_without_panicking() {
        let anchor = TrustAnchor::from_seed(b"a");
        let key = anchor.keypair("p");
        for wire in [
            Interest::new(name()).with_nonce(7).encode(),
            Data::new(name(), vec![3; 64]).signed(&key).encode(),
        ] {
            for cut in 0..wire.len() {
                let truncated = Payload::copy_from_slice(&wire[..cut]);
                assert!(
                    Packet::peek_header(&truncated).is_err(),
                    "cut={cut} must be rejected"
                );
            }
            assert!(Packet::peek_header(&Payload::from(wire)).is_ok());
        }
        assert!(Packet::peek_header(&Payload::from(vec![0x99, 0x00])).is_err());
        assert!(Packet::peek_header(&Payload::from(Vec::new())).is_err());
    }

    #[test]
    fn peek_header_does_not_decode_the_packet_tail() {
        // A Data packet whose post-name region is garbage: the full decode
        // fails, the name-first peek succeeds — proof the tail stays lazy.
        let mut body = Vec::new();
        encode_name(&mut body, &name());
        body.extend_from_slice(&[types::CONTENT as u8, 200]); // overrunning length
        let mut wire = Vec::new();
        tlv::write_tlv(&mut wire, types::DATA, &body);
        let buf = Payload::from(wire);
        assert!(Data::decode_payload(&buf).is_err(), "tail is malformed");
        let Ok(PacketHeader::Data(h)) = Packet::peek_header(&buf) else {
            panic!("peek must not read the tail");
        };
        assert!(name().wire_value_eq(h.name_wire));
    }

    #[test]
    fn malformed_name_region_peeks_but_fails_to_materialize() {
        // Component validation is deferred: the peeked slice exists, never
        // matches a canonical wire key, and `to_name` reports the error.
        let mut garbage_name = Vec::new();
        tlv::write_tlv(&mut garbage_name, types::NAME, &[0x08, 200]); // overrun
        let mut body = garbage_name;
        tlv::write_tlv(&mut body, types::NONCE, &7u32.to_be_bytes());
        let mut wire = Vec::new();
        tlv::write_tlv(&mut wire, types::INTEREST, &body);
        let buf = Payload::from(wire);
        let Ok(PacketHeader::Interest(h)) = Packet::peek_header(&buf) else {
            panic!("prefix framing is valid");
        };
        assert!(h.to_name(&buf).is_err());
        assert!(!name().wire_value_eq(h.name_wire));
        assert!(Interest::decode_payload(&buf).is_err(), "full decode fails");
    }
}
