//! A Named Data Networking substrate for the DAPES reproduction.
//!
//! This crate re-implements the slice of NDN that DAPES (ICDCS 2020) runs
//! on: hierarchical [`name::Name`]s, the NDN-TLV wire format for
//! [`packet::Interest`] and [`packet::Data`], and an NFD-style forwarder
//! with Content Store, Pending Interest Table and FIB exactly following the
//! paper's Fig. 1 pipeline.
//!
//! Data packets are signed at production time with the trust-anchor scheme
//! from [`dapes_crypto`], binding content to name — the property DAPES
//! relies on for provenance and integrity.
//!
//! # Examples
//!
//! ```
//! use dapes_ndn::prelude::*;
//!
//! let mut fwd = Forwarder::new(ForwarderConfig::default());
//! fwd.fib_mut().register(Name::from_uri("/"), FaceId::WIRELESS);
//!
//! let interest = Interest::new(Name::from_uri("/col/file/0")).with_nonce(1);
//! let actions = fwd.process_interest(
//!     dapes_netsim::time::SimTime::ZERO,
//!     &interest,
//!     FaceId::APP,
//! );
//! assert_eq!(actions.len(), 1); // forwarded to the wireless face
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cs;
pub mod face;
pub mod fib;
pub mod forwarder;
pub mod hash;
pub mod name;
pub mod packet;
pub mod pit;
pub mod tlv;

/// Glob-import of the commonly used types.
pub mod prelude {
    pub use crate::cs::ContentStore;
    pub use crate::face::FaceId;
    pub use crate::fib::Fib;
    pub use crate::forwarder::{
        Action, BroadcastStrategy, Decision, Forwarder, ForwarderConfig, Strategy,
    };
    pub use crate::name::{Component, Name};
    pub use crate::packet::{ContentType, Data, Interest, Packet};
    pub use crate::pit::{Pit, PitEntry, PitInsert};
    pub use crate::tlv::{TlvError, TlvReader};
}

pub use prelude::*;
