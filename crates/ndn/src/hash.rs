//! A fast, word-at-a-time hasher for the PIT/FIB wire indexes.
//!
//! The wire indexes are probed once per overheard frame — millions of times
//! per simulated second at swarm scale — with short keys (canonical name
//! encodings, typically 20–60 bytes). The standard library's SipHash is
//! DoS-resistant but pays ~1 ns/byte plus setup; this FxHash-style
//! multiply-rotate hasher processes eight bytes per step and is several
//! times cheaper on such keys. The simulator hashes only names produced by
//! the protocols under study, not attacker-controlled input, so collision
//! hardening buys nothing here.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (golden-ratio derived, as used by rustc's FxHash).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one `u64` folded with multiply-rotate per word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" keys differ.
            tail[7] = rest.len() as u8;
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn distinguishes_close_keys() {
        let keys: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| format!("/sched/adv/n{i}").into_bytes())
            .collect();
        let mut seen = std::collections::HashSet::new();
        for k in &keys {
            assert!(seen.insert(hash_of(k)), "collision on {k:?}");
        }
        // Shared prefixes, differing tails and lengths.
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b"abcdefgh"), hash_of(b"abcdefg"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn works_as_a_hashmap_hasher() {
        let mut map: HashMap<Vec<u8>, u32, FxBuildHasher> = HashMap::default();
        for i in 0..100u32 {
            map.insert(format!("/k/{i}").into_bytes(), i);
        }
        for i in 0..100u32 {
            assert_eq!(map.get(format!("/k/{i}").as_bytes()), Some(&i));
        }
    }
}
