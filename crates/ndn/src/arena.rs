//! A generation-tagged slab arena for forwarder table entries.
//!
//! The PIT and Content Store keep every entry in one of these arenas and
//! store only small `Copy` [`ArenaRef`] handles in their name- and
//! wire-keyed indexes. Entry insertion reuses freed slots instead of
//! allocating, and a stale handle (one whose slot was freed and reused)
//! can never resolve to the wrong entry: each slot carries a generation
//! counter, bumped on free, that the handle must match — the same scheme
//! the simulator's timer slab uses for cancel-safe timer ids.

/// A handle into an [`Arena`]: slot index plus the generation the slot had
/// when the entry was inserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArenaRef {
    index: u32,
    generation: u32,
}

#[derive(Clone, Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A slab of `T` with generation-tagged handles and a free list.
///
/// # Examples
///
/// ```
/// use dapes_ndn::arena::Arena;
///
/// let mut arena: Arena<&str> = Arena::new();
/// let a = arena.insert("alpha");
/// let b = arena.insert("beta");
/// assert_eq!(arena.get(a), Some(&"alpha"));
/// assert_eq!(arena.remove(b), Some("beta"));
/// assert_eq!(arena.live(), 1);
/// // The freed slot is reused, but the old handle stays dead.
/// let c = arena.insert("gamma");
/// assert_eq!(arena.get(b), None);
/// assert_eq!(arena.get(c), Some(&"gamma"));
/// assert_eq!(arena.allocated(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Inserts a value, reusing a freed slot when one is available.
    pub fn insert(&mut self, value: T) -> ArenaRef {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.value = Some(value);
            ArenaRef {
                index,
                generation: slot.generation,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena slot count exceeds u32");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            ArenaRef {
                index,
                generation: 0,
            }
        }
    }

    /// The entry behind `handle`, unless it was removed (stale handles
    /// resolve to `None` even after slot reuse).
    pub fn get(&self, handle: ArenaRef) -> Option<&T> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access to the entry behind `handle`.
    pub fn get_mut(&mut self, handle: ArenaRef) -> Option<&mut T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes and returns the entry behind `handle`, freeing its slot for
    /// reuse under a new generation.
    pub fn remove(&mut self, handle: ArenaRef) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.live -= 1;
        Some(value)
    }

    /// Iterates over live entries in slot order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.value.as_ref())
    }

    /// Number of live entries.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of slots ever allocated (peak-concurrency bound, not volume
    /// bound — freed slots are reused).
    pub fn allocated(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut arena = Arena::new();
        let a = arena.insert(1u64);
        let b = arena.insert(2u64);
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a), Some(&1));
        *arena.get_mut(b).expect("live") = 20;
        assert_eq!(arena.remove(b), Some(20));
        assert_eq!(arena.remove(b), None, "double remove is a no-op");
        assert_eq!(arena.live(), 1);
    }

    #[test]
    fn stale_handles_never_resolve_after_slot_reuse() {
        let mut arena = Arena::new();
        let a = arena.insert("old");
        assert_eq!(arena.remove(a), Some("old"));
        let b = arena.insert("new");
        assert_eq!(b.index, a.index, "slot must be reused");
        assert_ne!(b.generation, a.generation);
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.get_mut(a), None);
        assert_eq!(arena.remove(a), None);
        assert_eq!(arena.get(b), Some(&"new"));
    }

    #[test]
    fn allocation_is_bounded_by_peak_concurrency() {
        let mut arena = Arena::new();
        for round in 0..100 {
            let x = arena.insert(round);
            let y = arena.insert(round);
            arena.remove(x);
            arena.remove(y);
        }
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.allocated(), 2, "churn must reuse freed slots");
    }
}
