//! The Pending Interest Table.
//!
//! The PIT records forwarded Interests awaiting Data (paper Fig. 1): it
//! aggregates same-name requests, suppresses duplicate nonces (which is what
//! stops broadcast re-flooding loops), and routes returning Data back to the
//! downstream faces that asked for it.

use crate::arena::{Arena, ArenaRef};
use crate::face::FaceId;
use crate::hash::FxBuildHasher;
use crate::name::Name;
use crate::tlv::TlvReader;
use dapes_netsim::time::SimTime;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One pending Interest.
#[derive(Clone, Debug)]
pub struct PitEntry {
    /// The Interest name.
    pub name: Name,
    /// Whether any aggregated Interest had CanBePrefix set.
    pub can_be_prefix: bool,
    /// Faces that asked for this data.
    pub downstreams: Vec<FaceId>,
    /// Nonces seen for this name (duplicate suppression).
    pub nonces: Vec<u32>,
    /// When the entry expires.
    pub expiry: SimTime,
    /// When the Interest was last forwarded upstream (consumer
    /// retransmissions may re-forward after a suppression interval).
    pub last_forward: Option<SimTime>,
    /// The name's canonical wire-value key, shared with the wire index so
    /// aggregation and removal never re-encode the name.
    pub(crate) wire_key: Arc<[u8]>,
}

impl PitEntry {
    /// Approximate bytes of state (Table I memory proxy).
    pub fn state_bytes(&self) -> usize {
        self.name.state_bytes() + self.downstreams.len() * 4 + self.nonces.len() * 4 + 32
    }
}

/// Result of inserting an Interest into the PIT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PitInsert {
    /// First Interest for this name: forward it.
    New,
    /// Same name, new nonce, new downstream: aggregated, do not forward.
    Aggregated,
    /// Nonce already seen: a duplicate or loop, drop silently.
    DuplicateNonce,
}

/// What the peek resolution ladder learns from its single PIT probe:
/// enough to answer both the duplicate-nonce and the would-be-new
/// questions, regardless of which table generation backs the PIT.
#[derive(Clone, Copy, Debug)]
pub struct PitProbe<'a> {
    /// Whether any aggregated Interest had CanBePrefix set.
    pub can_be_prefix: bool,
    /// Nonces recorded for the name.
    pub nonces: &'a [u32],
}

/// The wire-index mirror of one legacy-generation entry: just what the
/// overhearing fast path probes (duplicate nonces and CanBePrefix
/// matching).
#[derive(Clone, Debug)]
struct WireEntry {
    can_be_prefix: bool,
    nonces: Vec<u32>,
}

/// The two table generations a PIT can run on. Behaviour is identical;
/// only the cost model differs, which is exactly what the scheduler
/// benchmark's eager-vs-lazy axis prices.
#[derive(Clone, Debug)]
enum Tables {
    /// Current generation: entries live in a generation-tagged [`Arena`];
    /// the single *wire index* — a hash map keyed by
    /// [`Name::to_wire_value`] — holds only `Copy` handles into it.
    Wire {
        arena: Arena<PitEntry>,
        index: HashMap<Arc<[u8]>, ArenaRef, FxBuildHasher>,
    },
    /// Pre-arena generation, kept as a benchmarkable cost model of the
    /// old control plane: a `Name`-keyed ordered map owning the entries,
    /// plus a wire mirror that duplicates per-name nonce state. Every
    /// insert pays a tree search over component `Arc`s and keeps two
    /// structures coherent.
    Legacy {
        entries: BTreeMap<Name, PitEntry>,
        mirror: HashMap<Arc<[u8]>, WireEntry, FxBuildHasher>,
    },
}

impl Default for Tables {
    fn default() -> Self {
        Tables::Wire {
            arena: Arena::new(),
            index: HashMap::default(),
        }
    }
}

/// The Pending Interest Table.
///
/// Entries live in a generation-tagged [`Arena`]; the single *wire index* —
/// a hash map keyed by [`Name::to_wire_value`] — holds only `Copy` handles
/// into it. One index serves both pipelines: the full-decode path encodes
/// the Interest name once per probe, and peeked frames carry their name as
/// a borrowed byte slice the index answers duplicate-nonce and PIT-match
/// probes against directly — no `Name` is built, no component `Arc`s are
/// touched. Data-to-entry prefix matching probes component boundaries of
/// the wire key, which works because a name's canonical wire value
/// byte-extends all of its prefixes'. The index only ever holds canonical
/// encodings of valid names, so a frame with a non-canonical or malformed
/// name region simply misses and falls through to the full decode path.
///
/// [`Pit::legacy`] instead runs on the previous table generation (a
/// `Name`-keyed ordered map plus a duplicating wire mirror), observable-
/// behaviour-identical but with the old cost model; the scheduler
/// benchmark's eager modes use it so the baseline keeps pricing the
/// control plane this generation replaced.
#[derive(Clone, Debug, Default)]
pub struct Pit {
    tables: Tables,
}

impl Pit {
    /// Creates an empty PIT on the wire-arena tables.
    pub fn new() -> Self {
        Pit::default()
    }

    /// Creates an empty PIT on the legacy (pre-arena) table generation.
    pub fn legacy() -> Self {
        Pit {
            tables: Tables::Legacy {
                entries: BTreeMap::new(),
                mirror: HashMap::default(),
            },
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        match &self.tables {
            Tables::Wire { index, .. } => index.len(),
            Tables::Legacy { entries, .. } => entries.len(),
        }
    }

    /// Whether the PIT is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of state (entries plus the wire index).
    pub fn state_bytes(&self) -> usize {
        match &self.tables {
            Tables::Wire { arena, index } => {
                arena.values().map(PitEntry::state_bytes).sum::<usize>()
                    + index.keys().map(|k| k.len() + 16).sum::<usize>()
            }
            Tables::Legacy { entries, mirror } => {
                entries.values().map(PitEntry::state_bytes).sum::<usize>()
                    + mirror
                        .iter()
                        .map(|(k, w)| k.len() + w.nonces.len() * 4 + 16)
                        .sum::<usize>()
            }
        }
    }

    /// Live entries in the slab arena (mirrors [`Pit::len`]; exported as
    /// the `pit_arena_live` stat). Zero on the legacy tables, which never
    /// touch the arena.
    pub fn arena_live(&self) -> usize {
        match &self.tables {
            Tables::Wire { arena, .. } => arena.live(),
            Tables::Legacy { .. } => 0,
        }
    }

    /// Arena slots ever allocated — bounded by peak concurrency, not by
    /// insert volume. Zero on the legacy tables.
    pub fn arena_allocated(&self) -> usize {
        match &self.tables {
            Tables::Wire { arena, .. } => arena.allocated(),
            Tables::Legacy { .. } => 0,
        }
    }

    /// Records an incoming Interest.
    pub fn insert(
        &mut self,
        name: &Name,
        nonce: u32,
        can_be_prefix: bool,
        ingress: FaceId,
        expiry: SimTime,
    ) -> PitInsert {
        match &mut self.tables {
            Tables::Wire { .. } => self.insert_wired(
                name,
                &name.to_wire_value(),
                nonce,
                can_be_prefix,
                ingress,
                expiry,
            ),
            Tables::Legacy { entries, mirror } => match entries.get_mut(name) {
                None => {
                    // Encode the name once; entry and mirror share the key.
                    let wire_key: Arc<[u8]> = name.to_wire_value().into();
                    entries.insert(
                        name.clone(),
                        PitEntry {
                            name: name.clone(),
                            can_be_prefix,
                            downstreams: vec![ingress],
                            nonces: vec![nonce],
                            expiry,
                            last_forward: None,
                            wire_key: wire_key.clone(),
                        },
                    );
                    mirror.insert(
                        wire_key,
                        WireEntry {
                            can_be_prefix,
                            nonces: vec![nonce],
                        },
                    );
                    PitInsert::New
                }
                Some(entry) => {
                    if entry.nonces.contains(&nonce) {
                        return PitInsert::DuplicateNonce;
                    }
                    entry.nonces.push(nonce);
                    entry.can_be_prefix |= can_be_prefix;
                    entry.expiry = entry.expiry.max(expiry);
                    if !entry.downstreams.contains(&ingress) {
                        entry.downstreams.push(ingress);
                    }
                    let wire = mirror
                        .get_mut(&*entry.wire_key)
                        .expect("wire mirror tracks entries");
                    wire.nonces.push(nonce);
                    wire.can_be_prefix |= can_be_prefix;
                    PitInsert::Aggregated
                }
            },
        }
    }

    /// [`Pit::insert`] with the name's canonical wire value supplied by the
    /// caller, so a pipeline that already encoded it (for the Content Store
    /// probe, say) does not pay for a second encoding. On the legacy
    /// tables this is just [`Pit::insert`] — that generation keys on the
    /// `Name` and cannot use the hint.
    pub fn insert_wired(
        &mut self,
        name: &Name,
        name_wire: &[u8],
        nonce: u32,
        can_be_prefix: bool,
        ingress: FaceId,
        expiry: SimTime,
    ) -> PitInsert {
        debug_assert_eq!(&*name.to_wire_value(), name_wire);
        let handle = match &self.tables {
            Tables::Wire { index, .. } => index.get(name_wire).copied(),
            Tables::Legacy { .. } => {
                return self.insert(name, nonce, can_be_prefix, ingress, expiry)
            }
        };
        match handle {
            None => {
                self.insert_new_peeked(
                    name.clone(),
                    name_wire,
                    nonce,
                    can_be_prefix,
                    ingress,
                    expiry,
                );
                PitInsert::New
            }
            Some(handle) => {
                let Tables::Wire { arena, .. } = &mut self.tables else {
                    unreachable!("handle only exists on the wire tables");
                };
                let entry = arena.get_mut(handle).expect("indexed handles are live");
                if entry.nonces.contains(&nonce) {
                    return PitInsert::DuplicateNonce;
                }
                entry.nonces.push(nonce);
                entry.can_be_prefix |= can_be_prefix;
                entry.expiry = entry.expiry.max(expiry);
                if !entry.downstreams.contains(&ingress) {
                    entry.downstreams.push(ingress);
                }
                PitInsert::Aggregated
            }
        }
    }

    /// [`Pit::insert`] specialized for a frame the resolution ladder has
    /// already proven absent (the decode-free commit): the caller passes
    /// the name's wire bytes, skipping the re-encode that [`Pit::insert`]
    /// would do, hands the `Name` over by value (the commit point is its
    /// only consumer — no clone), and gets the fresh entry back so
    /// `last_forward` can be stamped without a second probe.
    pub fn insert_new_peeked(
        &mut self,
        name: Name,
        name_wire: &[u8],
        nonce: u32,
        can_be_prefix: bool,
        ingress: FaceId,
        expiry: SimTime,
    ) -> &mut PitEntry {
        debug_assert!(!self.contains_wire(name_wire), "caller proved absence");
        debug_assert_eq!(&*name.to_wire_value(), name_wire);
        let wire_key: Arc<[u8]> = name_wire.into();
        match &mut self.tables {
            Tables::Wire { arena, index } => {
                let entry = PitEntry {
                    name,
                    can_be_prefix,
                    downstreams: vec![ingress],
                    nonces: vec![nonce],
                    expiry,
                    last_forward: None,
                    wire_key: wire_key.clone(),
                };
                let handle = arena.insert(entry);
                index.insert(wire_key, handle);
                arena.get_mut(handle).expect("just inserted")
            }
            Tables::Legacy { entries, mirror } => {
                mirror.insert(
                    wire_key.clone(),
                    WireEntry {
                        can_be_prefix,
                        nonces: vec![nonce],
                    },
                );
                let entry = PitEntry {
                    name: name.clone(),
                    can_be_prefix,
                    downstreams: vec![ingress],
                    nonces: vec![nonce],
                    expiry,
                    last_forward: None,
                    wire_key,
                };
                entries.entry(name).or_insert(entry)
            }
        }
    }

    /// Whether a pending entry exists for `name` (exact).
    pub fn contains(&self, name: &Name) -> bool {
        match &self.tables {
            Tables::Wire { .. } => self.contains_wire(&name.to_wire_value()),
            Tables::Legacy { entries, .. } => entries.contains_key(name),
        }
    }

    /// [`Pit::contains`] against a peeked frame's borrowed name bytes — one
    /// hash probe, no `Name` construction. Exactly the condition under
    /// which [`Pit::insert`] would *not* return [`PitInsert::New`].
    pub fn contains_wire(&self, name_wire: &[u8]) -> bool {
        match &self.tables {
            Tables::Wire { index, .. } => index.contains_key(name_wire),
            Tables::Legacy { mirror, .. } => mirror.contains_key(name_wire),
        }
    }

    /// The nonce/CanBePrefix state recorded for a peeked frame's borrowed
    /// name bytes, if any — the one probe behind both the duplicate-nonce
    /// and the would-be-new checks, so the peek resolution ladder hashes
    /// the name bytes once.
    pub fn probe_wire(&self, name_wire: &[u8]) -> Option<PitProbe<'_>> {
        match &self.tables {
            Tables::Wire { arena, index } => index.get(name_wire).map(|&h| {
                let e = arena.get(h).expect("indexed handles are live");
                PitProbe {
                    can_be_prefix: e.can_be_prefix,
                    nonces: &e.nonces,
                }
            }),
            Tables::Legacy { mirror, .. } => mirror.get(name_wire).map(|w| PitProbe {
                can_be_prefix: w.can_be_prefix,
                nonces: &w.nonces,
            }),
        }
    }

    /// Read-only duplicate check: whether `nonce` was already recorded for
    /// `name`. Exactly the condition under which [`Pit::insert`] returns
    /// [`PitInsert::DuplicateNonce`] without mutating anything.
    pub fn has_nonce(&self, name: &Name, nonce: u32) -> bool {
        self.has_nonce_wire(&name.to_wire_value(), nonce)
    }

    /// [`Pit::has_nonce`] against a peeked frame's borrowed name bytes —
    /// one hash probe, no `Name` construction.
    pub fn has_nonce_wire(&self, name_wire: &[u8], nonce: u32) -> bool {
        self.probe_wire(name_wire)
            .is_some_and(|p| p.nonces.contains(&nonce))
    }

    /// Read-only mirror of [`Pit::take_matching`]: whether a Data packet
    /// named `data_name` would satisfy any pending entry (exact match or a
    /// CanBePrefix prefix entry).
    pub fn matches(&self, data_name: &Name) -> bool {
        self.matches_wire(&data_name.to_wire_value())
    }

    /// [`Pit::matches`] against a peeked frame's borrowed name bytes: the
    /// exact probe is one hash lookup, and prefix probes reuse the fact
    /// that a name's wire value extends all of its prefixes' wire values,
    /// so component boundaries found by a cheap TLV walk are the only
    /// candidate cut points.
    pub fn matches_wire(&self, name_wire: &[u8]) -> bool {
        if self.contains_wire(name_wire) {
            return true;
        }
        let mut r = TlvReader::new(name_wire);
        let mut boundary = 0usize;
        loop {
            // `boundary` ends a strict prefix of the name (k components).
            if self
                .probe_wire(&name_wire[..boundary])
                .is_some_and(|p| p.can_be_prefix)
            {
                return true;
            }
            if r.is_at_end() || r.read_tlv().is_err() {
                return false;
            }
            boundary = name_wire.len() - r.remaining();
            if boundary >= name_wire.len() {
                // The full name is not a strict prefix; the exact probe
                // already ran.
                return false;
            }
        }
    }

    /// Mutable access to an entry (forwarders update `last_forward`).
    pub fn entry_mut(&mut self, name: &Name) -> Option<&mut PitEntry> {
        match &mut self.tables {
            Tables::Wire { arena, index } => {
                let &handle = index.get(name.to_wire_value().as_slice())?;
                arena.get_mut(handle)
            }
            Tables::Legacy { entries, .. } => entries.get_mut(name),
        }
    }

    /// Removes and returns all entries a Data packet with `data_name`
    /// satisfies: the exact-name entry, plus any prefix entries that were
    /// inserted with CanBePrefix — root first, then longer prefixes, as the
    /// boundary walk ascends. Both table generations report matches in the
    /// same order (exact entry first, then prefixes shortest-first).
    pub fn take_matching(&mut self, data_name: &Name) -> Vec<PitEntry> {
        match &mut self.tables {
            Tables::Wire { arena, index } => {
                fn evict(
                    arena: &mut Arena<PitEntry>,
                    index: &mut HashMap<Arc<[u8]>, ArenaRef, FxBuildHasher>,
                    key: &[u8],
                ) -> Option<PitEntry> {
                    let handle = index.remove(key)?;
                    Some(arena.remove(handle).expect("indexed handles are live"))
                }
                let wire = data_name.to_wire_value();
                let mut matched = Vec::new();
                if let Some(e) = evict(arena, index, &wire) {
                    matched.push(e);
                }
                // Check strict prefixes for CanBePrefix entries: every
                // prefix ends at a component boundary of the wire value.
                // Names are short (typically <= 4 components), so this
                // loop is cheap.
                let mut r = TlvReader::new(&wire);
                let mut boundary = 0usize;
                loop {
                    let is_cbp = index
                        .get(&wire[..boundary])
                        .and_then(|&h| arena.get(h))
                        .is_some_and(|e| e.can_be_prefix);
                    if is_cbp {
                        matched.push(evict(arena, index, &wire[..boundary]).expect("just checked"));
                    }
                    if r.is_at_end() || r.read_tlv().is_err() {
                        break;
                    }
                    boundary = wire.len() - r.remaining();
                    if boundary >= wire.len() {
                        // The full name is not a strict prefix; the exact
                        // probe already ran.
                        break;
                    }
                }
                matched
            }
            Tables::Legacy { entries, mirror } => {
                let mut matched = Vec::new();
                if let Some(e) = entries.remove(data_name) {
                    mirror.remove(&*e.wire_key);
                    matched.push(e);
                }
                for k in 0..data_name.len() {
                    let prefix = data_name.prefix(k);
                    let is_cbp = entries.get(&prefix).is_some_and(|e| e.can_be_prefix);
                    if is_cbp {
                        let e = entries.remove(&prefix).expect("just checked");
                        mirror.remove(&*e.wire_key);
                        matched.push(e);
                    }
                }
                matched
            }
        }
    }

    /// Removes entries that expired at or before `now`, returning their
    /// names in canonical order (DAPES pure forwarders start suppression
    /// timers off these, and callers may arm per-name timers — the sort
    /// keeps that order independent of hash-map iteration, and identical
    /// to the legacy tables' ordered-map walk). Each expired entry leaves
    /// the arena *and* the wire index, so a stale dup-nonce/PIT-match can
    /// never be reported for an expired Interest.
    pub fn expire(&mut self, now: SimTime) -> Vec<Name> {
        match &mut self.tables {
            Tables::Wire { arena, index } => {
                let mut expired = Vec::new();
                index.retain(|_, &mut handle| {
                    if arena.get(handle).expect("indexed handles are live").expiry <= now {
                        let mut e = arena.remove(handle).expect("just read");
                        expired.push(std::mem::take(&mut e.name));
                        false
                    } else {
                        true
                    }
                });
                expired.sort_unstable();
                expired
            }
            Tables::Legacy { entries, mirror } => {
                let mut expired = Vec::new();
                let mut expired_keys = Vec::new();
                entries.retain(|_, e| {
                    if e.expiry <= now {
                        expired.push(std::mem::take(&mut e.name));
                        expired_keys.push(e.wire_key.clone());
                        false
                    } else {
                        true
                    }
                });
                for key in expired_keys {
                    mirror.remove(&*key);
                }
                expired
            }
        }
    }

    /// The soonest expiry among pending entries, to drive a cleanup timer.
    pub fn next_expiry(&self) -> Option<SimTime> {
        match &self.tables {
            Tables::Wire { arena, .. } => arena.values().map(|e| e.expiry).min(),
            Tables::Legacy { entries, .. } => entries.values().map(|e| e.expiry).min(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn name(uri: &str) -> Name {
        Name::from_uri(uri)
    }

    #[test]
    fn first_insert_is_new() {
        let mut pit = Pit::new();
        assert_eq!(
            pit.insert(&name("/a"), 1, false, FaceId::APP, t(4)),
            PitInsert::New
        );
        assert!(pit.contains(&name("/a")));
    }

    #[test]
    fn same_name_new_nonce_aggregates() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        assert_eq!(
            pit.insert(&name("/a"), 2, false, FaceId::WIRELESS, t(5)),
            PitInsert::Aggregated
        );
        let entries = pit.take_matching(&name("/a"));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].downstreams, vec![FaceId::APP, FaceId::WIRELESS]);
        assert_eq!(entries[0].expiry, t(5), "expiry extended");
    }

    #[test]
    fn duplicate_nonce_detected() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        assert_eq!(
            pit.insert(&name("/a"), 1, false, FaceId::WIRELESS, t(4)),
            PitInsert::DuplicateNonce
        );
    }

    #[test]
    fn has_nonce_mirrors_duplicate_insert() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        assert!(pit.has_nonce(&name("/a"), 1));
        assert!(!pit.has_nonce(&name("/a"), 2));
        assert!(!pit.has_nonce(&name("/b"), 1));
    }

    #[test]
    fn probe_wire_is_the_single_ladder_probe() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        let key = name("/a").to_wire_value();
        let probe = pit.probe_wire(&key).expect("present");
        assert_eq!(probe.nonces, &[1]);
        assert!(!probe.can_be_prefix);
        assert!(pit.probe_wire(&name("/b").to_wire_value()).is_none());
    }

    #[test]
    fn matches_mirrors_take_matching_without_mutating() {
        let mut pit = Pit::new();
        pit.insert(&name("/col/f/0"), 1, false, FaceId::APP, t(4));
        pit.insert(&name("/col"), 2, true, FaceId::APP, t(4));
        pit.insert(&name("/other"), 3, false, FaceId::APP, t(4));
        assert!(pit.matches(&name("/col/f/0")), "exact entry");
        assert!(pit.matches(&name("/col/f/9")), "CanBePrefix prefix entry");
        assert!(
            !pit.matches(&name("/other/x")),
            "non-CBP prefix is no match"
        );
        assert!(!pit.matches(&name("/elsewhere")));
        assert_eq!(pit.len(), 3, "probe must not consume entries");
    }

    #[test]
    fn same_downstream_not_duplicated() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        pit.insert(&name("/a"), 2, false, FaceId::APP, t(4));
        let entries = pit.take_matching(&name("/a"));
        assert_eq!(entries[0].downstreams, vec![FaceId::APP]);
    }

    #[test]
    fn data_matches_exact_entry() {
        let mut pit = Pit::new();
        pit.insert(&name("/col/f/0"), 1, false, FaceId::APP, t(4));
        assert_eq!(pit.take_matching(&name("/col/f/0")).len(), 1);
        assert!(pit.is_empty());
    }

    #[test]
    fn data_matches_can_be_prefix_entry() {
        let mut pit = Pit::new();
        pit.insert(&name("/col"), 1, true, FaceId::APP, t(4));
        let matched = pit.take_matching(&name("/col/f/0"));
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].name, name("/col"));
    }

    #[test]
    fn data_does_not_match_non_prefix_entry() {
        let mut pit = Pit::new();
        pit.insert(&name("/col"), 1, false, FaceId::APP, t(4));
        assert!(pit.take_matching(&name("/col/f/0")).is_empty());
        assert!(pit.contains(&name("/col")), "entry still pending");
    }

    #[test]
    fn data_matches_exact_and_prefix_simultaneously() {
        let mut pit = Pit::new();
        pit.insert(&name("/col/f/0"), 1, false, FaceId::APP, t(4));
        pit.insert(&name("/col"), 2, true, FaceId::WIRELESS, t(4));
        let matched = pit.take_matching(&name("/col/f/0"));
        assert_eq!(matched.len(), 2);
    }

    #[test]
    fn root_can_be_prefix_entry_matches_everything() {
        let mut pit = Pit::new();
        pit.insert(&Name::root(), 1, true, FaceId::APP, t(4));
        assert!(pit.matches(&name("/any/thing")));
        assert_eq!(pit.take_matching(&name("/any/thing")).len(), 1);
        assert!(pit.is_empty());
    }

    #[test]
    fn expiry_removes_and_reports() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        pit.insert(&name("/b"), 2, false, FaceId::APP, t(8));
        assert_eq!(pit.next_expiry(), Some(t(4)));
        let expired = pit.expire(t(5));
        assert_eq!(expired, vec![name("/a")]);
        assert_eq!(pit.len(), 1);
        assert_eq!(pit.expire(t(5)), Vec::<Name>::new());
    }

    #[test]
    fn expire_reports_names_in_canonical_order() {
        for mut pit in [Pit::new(), Pit::legacy()] {
            for uri in ["/z/9", "/a/1", "/m", "/b/2/3"] {
                pit.insert(&name(uri), 1, false, FaceId::APP, t(4));
            }
            let expired = pit.expire(t(4));
            assert_eq!(
                expired,
                vec![name("/a/1"), name("/b/2/3"), name("/m"), name("/z/9")],
                "order must not depend on hash-map iteration"
            );
        }
    }

    #[test]
    fn expire_evicts_the_wire_index_too() {
        // Regression: a desynced wire index would keep reporting stale
        // dup-nonce / PIT-match outcomes to the peek fast path after the
        // entry itself expired.
        for mut pit in [Pit::new(), Pit::legacy()] {
            pit.insert(&name("/col/f/0"), 7, true, FaceId::APP, t(4));
            let key = name("/col/f/0").to_wire_value();
            assert!(pit.contains_wire(&key));
            assert!(pit.has_nonce_wire(&key, 7));
            assert!(pit.matches_wire(&name("/col/f/0/seg").to_wire_value()));
            let expired = pit.expire(t(4));
            assert_eq!(expired, vec![name("/col/f/0")]);
            assert!(!pit.contains_wire(&key), "wire entry must expire with it");
            assert!(!pit.has_nonce_wire(&key, 7));
            assert!(!pit.matches_wire(&name("/col/f/0/seg").to_wire_value()));
            assert_eq!(pit.arena_live(), 0, "arena slot must be freed");
        }
    }

    #[test]
    fn take_matching_frees_arena_slots_for_reuse() {
        let mut pit = Pit::new();
        for round in 0..50u32 {
            pit.insert(&name("/a"), round, false, FaceId::APP, t(4));
            pit.insert(&name("/b"), round, false, FaceId::APP, t(4));
            assert_eq!(pit.arena_live(), 2);
            assert_eq!(pit.take_matching(&name("/a")).len(), 1);
            assert_eq!(pit.take_matching(&name("/b")).len(), 1);
        }
        assert_eq!(pit.arena_live(), 0);
        assert_eq!(
            pit.arena_allocated(),
            2,
            "allocation must track peak concurrency, not volume"
        );
    }

    #[test]
    fn legacy_tables_behave_identically() {
        // The benchmark compares the two table generations on cost alone,
        // which is only fair if every observable outcome agrees.
        let mut wire = Pit::new();
        let mut legacy = Pit::legacy();
        let script: &[(&str, u32, bool)] = &[
            ("/col/f/0", 1, false),
            ("/col/f/0", 1, false), // duplicate nonce
            ("/col/f/0", 2, false), // aggregation
            ("/col", 3, true),
            ("/adv/n/7", 4, false),
            ("/adv/n/8", 5, false),
        ];
        for &(uri, nonce, cbp) in script {
            assert_eq!(
                wire.insert(&name(uri), nonce, cbp, FaceId::WIRELESS, t(4)),
                legacy.insert(&name(uri), nonce, cbp, FaceId::WIRELESS, t(4)),
                "insert {uri} nonce {nonce}"
            );
        }
        assert_eq!(wire.len(), legacy.len());
        for probe in ["/col/f/0", "/col/f/9", "/adv/n/7", "/none"] {
            assert_eq!(wire.matches(&name(probe)), legacy.matches(&name(probe)));
            let key = name(probe).to_wire_value();
            assert_eq!(wire.contains_wire(&key), legacy.contains_wire(&key));
            assert_eq!(wire.has_nonce_wire(&key, 1), legacy.has_nonce_wire(&key, 1));
        }
        let w = wire.take_matching(&name("/col/f/0"));
        let l = legacy.take_matching(&name("/col/f/0"));
        assert_eq!(w.len(), l.len());
        for (a, b) in w.iter().zip(&l) {
            assert_eq!(a.name, b.name, "match order must agree");
            assert_eq!(a.nonces, b.nonces);
            assert_eq!(a.downstreams, b.downstreams);
        }
        assert_eq!(wire.expire(t(4)), legacy.expire(t(4)));
        assert!(wire.is_empty() && legacy.is_empty());
    }

    #[test]
    fn state_bytes_reflect_entries() {
        let mut pit = Pit::new();
        assert_eq!(pit.state_bytes(), 0);
        pit.insert(&name("/a/b/c"), 1, false, FaceId::APP, t(4));
        assert!(pit.state_bytes() > 0);
    }
}
