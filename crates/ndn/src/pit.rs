//! The Pending Interest Table.
//!
//! The PIT records forwarded Interests awaiting Data (paper Fig. 1): it
//! aggregates same-name requests, suppresses duplicate nonces (which is what
//! stops broadcast re-flooding loops), and routes returning Data back to the
//! downstream faces that asked for it.

use crate::face::FaceId;
use crate::hash::FxBuildHasher;
use crate::name::Name;
use crate::tlv::TlvReader;
use dapes_netsim::time::SimTime;
use std::collections::{BTreeMap, HashMap};

/// One pending Interest.
#[derive(Clone, Debug)]
pub struct PitEntry {
    /// The Interest name.
    pub name: Name,
    /// Whether any aggregated Interest had CanBePrefix set.
    pub can_be_prefix: bool,
    /// Faces that asked for this data.
    pub downstreams: Vec<FaceId>,
    /// Nonces seen for this name (duplicate suppression).
    pub nonces: Vec<u32>,
    /// When the entry expires.
    pub expiry: SimTime,
    /// When the Interest was last forwarded upstream (consumer
    /// retransmissions may re-forward after a suppression interval).
    pub last_forward: Option<SimTime>,
    /// The name's canonical wire-value key, shared with the wire index so
    /// aggregation and removal never re-encode the name.
    pub(crate) wire_key: std::sync::Arc<[u8]>,
}

impl PitEntry {
    /// Approximate bytes of state (Table I memory proxy).
    pub fn state_bytes(&self) -> usize {
        self.name.state_bytes() + self.downstreams.len() * 4 + self.nonces.len() * 4 + 32
    }
}

/// Result of inserting an Interest into the PIT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PitInsert {
    /// First Interest for this name: forward it.
    New,
    /// Same name, new nonce, new downstream: aggregated, do not forward.
    Aggregated,
    /// Nonce already seen: a duplicate or loop, drop silently.
    DuplicateNonce,
}

/// The wire-index mirror of one entry: just what the overhearing fast path
/// probes (duplicate nonces and CanBePrefix matching).
#[derive(Clone, Debug)]
struct WireEntry {
    can_be_prefix: bool,
    nonces: Vec<u32>,
}

/// The Pending Interest Table.
///
/// Alongside the canonical `Name`-keyed map, the PIT maintains a *wire
/// index* keyed by [`Name::to_wire_value`]: peeked frames carry their name
/// as a borrowed byte slice, and the index answers duplicate-nonce and
/// PIT-match probes against that slice directly — no `Name` is built, no
/// component `Arc`s are touched. The index only ever holds canonical
/// encodings of valid names, so a frame with a non-canonical or malformed
/// name region simply misses and falls through to the full decode path.
#[derive(Clone, Debug, Default)]
pub struct Pit {
    entries: BTreeMap<Name, PitEntry>,
    by_wire: HashMap<std::sync::Arc<[u8]>, WireEntry, FxBuildHasher>,
}

impl Pit {
    /// Creates an empty PIT.
    pub fn new() -> Self {
        Pit::default()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the PIT is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes of state (entries plus the wire index).
    pub fn state_bytes(&self) -> usize {
        self.entries
            .values()
            .map(PitEntry::state_bytes)
            .sum::<usize>()
            + self
                .by_wire
                .iter()
                .map(|(k, w)| k.len() + w.nonces.len() * 4 + 16)
                .sum::<usize>()
    }

    /// Records an incoming Interest.
    pub fn insert(
        &mut self,
        name: &Name,
        nonce: u32,
        can_be_prefix: bool,
        ingress: FaceId,
        expiry: SimTime,
    ) -> PitInsert {
        match self.entries.get_mut(name) {
            None => {
                // Encode the name once; entry and index share the key.
                let wire_key: std::sync::Arc<[u8]> = name.to_wire_value().into();
                self.entries.insert(
                    name.clone(),
                    PitEntry {
                        name: name.clone(),
                        can_be_prefix,
                        downstreams: vec![ingress],
                        nonces: vec![nonce],
                        expiry,
                        last_forward: None,
                        wire_key: wire_key.clone(),
                    },
                );
                self.by_wire.insert(
                    wire_key,
                    WireEntry {
                        can_be_prefix,
                        nonces: vec![nonce],
                    },
                );
                PitInsert::New
            }
            Some(entry) => {
                if entry.nonces.contains(&nonce) {
                    return PitInsert::DuplicateNonce;
                }
                entry.nonces.push(nonce);
                entry.can_be_prefix |= can_be_prefix;
                entry.expiry = entry.expiry.max(expiry);
                if !entry.downstreams.contains(&ingress) {
                    entry.downstreams.push(ingress);
                }
                let wire = self
                    .by_wire
                    .get_mut(&*entry.wire_key)
                    .expect("wire index mirrors entries");
                wire.nonces.push(nonce);
                wire.can_be_prefix |= can_be_prefix;
                PitInsert::Aggregated
            }
        }
    }

    /// Whether a pending entry exists for `name` (exact).
    pub fn contains(&self, name: &Name) -> bool {
        self.entries.contains_key(name)
    }

    /// [`Pit::contains`] against a peeked frame's borrowed name bytes — one
    /// hash probe, no `Name` construction. Exactly the condition under
    /// which [`Pit::insert`] would *not* return [`PitInsert::New`].
    pub fn contains_wire(&self, name_wire: &[u8]) -> bool {
        self.by_wire.contains_key(name_wire)
    }

    /// Read-only duplicate check: whether `nonce` was already recorded for
    /// `name`. Exactly the condition under which [`Pit::insert`] returns
    /// [`PitInsert::DuplicateNonce`] without mutating anything.
    pub fn has_nonce(&self, name: &Name, nonce: u32) -> bool {
        self.has_nonce_wire(&name.to_wire_value(), nonce)
    }

    /// [`Pit::has_nonce`] against a peeked frame's borrowed name bytes —
    /// one hash probe, no `Name` construction.
    pub fn has_nonce_wire(&self, name_wire: &[u8], nonce: u32) -> bool {
        self.by_wire
            .get(name_wire)
            .is_some_and(|w| w.nonces.contains(&nonce))
    }

    /// Read-only mirror of [`Pit::take_matching`]: whether a Data packet
    /// named `data_name` would satisfy any pending entry (exact match or a
    /// CanBePrefix prefix entry).
    pub fn matches(&self, data_name: &Name) -> bool {
        self.matches_wire(&data_name.to_wire_value())
    }

    /// [`Pit::matches`] against a peeked frame's borrowed name bytes: the
    /// exact probe is one hash lookup, and prefix probes reuse the fact
    /// that a name's wire value extends all of its prefixes' wire values,
    /// so component boundaries found by a cheap TLV walk are the only
    /// candidate cut points.
    pub fn matches_wire(&self, name_wire: &[u8]) -> bool {
        if self.by_wire.contains_key(name_wire) {
            return true;
        }
        let mut r = TlvReader::new(name_wire);
        let mut boundary = 0usize;
        loop {
            // `boundary` ends a strict prefix of the name (k components).
            if self
                .by_wire
                .get(&name_wire[..boundary])
                .is_some_and(|w| w.can_be_prefix)
            {
                return true;
            }
            if r.is_at_end() || r.read_tlv().is_err() {
                return false;
            }
            boundary = name_wire.len() - r.remaining();
            if boundary >= name_wire.len() {
                // The full name is not a strict prefix; the exact probe
                // already ran.
                return false;
            }
        }
    }

    /// Mutable access to an entry (forwarders update `last_forward`).
    pub fn entry_mut(&mut self, name: &Name) -> Option<&mut PitEntry> {
        self.entries.get_mut(name)
    }

    /// Removes and returns all entries a Data packet with `data_name`
    /// satisfies: the exact-name entry, plus any prefix entries that were
    /// inserted with CanBePrefix.
    pub fn take_matching(&mut self, data_name: &Name) -> Vec<PitEntry> {
        let mut matched = Vec::new();
        if let Some(e) = self.entries.remove(data_name) {
            self.by_wire.remove(&*e.wire_key);
            matched.push(e);
        }
        // Check strict prefixes for CanBePrefix entries. Names are short
        // (typically <= 4 components), so this loop is cheap.
        for k in 0..data_name.len() {
            let prefix = data_name.prefix(k);
            let is_cbp = self.entries.get(&prefix).is_some_and(|e| e.can_be_prefix);
            if is_cbp {
                let e = self.entries.remove(&prefix).expect("just checked");
                self.by_wire.remove(&*e.wire_key);
                matched.push(e);
            }
        }
        matched
    }

    /// Removes entries that expired at or before `now`, returning their
    /// names (DAPES pure forwarders start suppression timers off these).
    /// Single pass, draining names out of the dropped entries in place —
    /// no per-entry clone and no second lookup.
    pub fn expire(&mut self, now: SimTime) -> Vec<Name> {
        let mut expired = Vec::new();
        let mut expired_keys = Vec::new();
        self.entries.retain(|_, e| {
            if e.expiry <= now {
                expired.push(std::mem::take(&mut e.name));
                expired_keys.push(e.wire_key.clone());
                false
            } else {
                true
            }
        });
        for key in expired_keys {
            self.by_wire.remove(&*key);
        }
        expired
    }

    /// The soonest expiry among pending entries, to drive a cleanup timer.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.entries.values().map(|e| e.expiry).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn name(uri: &str) -> Name {
        Name::from_uri(uri)
    }

    #[test]
    fn first_insert_is_new() {
        let mut pit = Pit::new();
        assert_eq!(
            pit.insert(&name("/a"), 1, false, FaceId::APP, t(4)),
            PitInsert::New
        );
        assert!(pit.contains(&name("/a")));
    }

    #[test]
    fn same_name_new_nonce_aggregates() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        assert_eq!(
            pit.insert(&name("/a"), 2, false, FaceId::WIRELESS, t(5)),
            PitInsert::Aggregated
        );
        let entries = pit.take_matching(&name("/a"));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].downstreams, vec![FaceId::APP, FaceId::WIRELESS]);
        assert_eq!(entries[0].expiry, t(5), "expiry extended");
    }

    #[test]
    fn duplicate_nonce_detected() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        assert_eq!(
            pit.insert(&name("/a"), 1, false, FaceId::WIRELESS, t(4)),
            PitInsert::DuplicateNonce
        );
    }

    #[test]
    fn has_nonce_mirrors_duplicate_insert() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        assert!(pit.has_nonce(&name("/a"), 1));
        assert!(!pit.has_nonce(&name("/a"), 2));
        assert!(!pit.has_nonce(&name("/b"), 1));
    }

    #[test]
    fn matches_mirrors_take_matching_without_mutating() {
        let mut pit = Pit::new();
        pit.insert(&name("/col/f/0"), 1, false, FaceId::APP, t(4));
        pit.insert(&name("/col"), 2, true, FaceId::APP, t(4));
        pit.insert(&name("/other"), 3, false, FaceId::APP, t(4));
        assert!(pit.matches(&name("/col/f/0")), "exact entry");
        assert!(pit.matches(&name("/col/f/9")), "CanBePrefix prefix entry");
        assert!(
            !pit.matches(&name("/other/x")),
            "non-CBP prefix is no match"
        );
        assert!(!pit.matches(&name("/elsewhere")));
        assert_eq!(pit.len(), 3, "probe must not consume entries");
    }

    #[test]
    fn same_downstream_not_duplicated() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        pit.insert(&name("/a"), 2, false, FaceId::APP, t(4));
        let entries = pit.take_matching(&name("/a"));
        assert_eq!(entries[0].downstreams, vec![FaceId::APP]);
    }

    #[test]
    fn data_matches_exact_entry() {
        let mut pit = Pit::new();
        pit.insert(&name("/col/f/0"), 1, false, FaceId::APP, t(4));
        assert_eq!(pit.take_matching(&name("/col/f/0")).len(), 1);
        assert!(pit.is_empty());
    }

    #[test]
    fn data_matches_can_be_prefix_entry() {
        let mut pit = Pit::new();
        pit.insert(&name("/col"), 1, true, FaceId::APP, t(4));
        let matched = pit.take_matching(&name("/col/f/0"));
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].name, name("/col"));
    }

    #[test]
    fn data_does_not_match_non_prefix_entry() {
        let mut pit = Pit::new();
        pit.insert(&name("/col"), 1, false, FaceId::APP, t(4));
        assert!(pit.take_matching(&name("/col/f/0")).is_empty());
        assert!(pit.contains(&name("/col")), "entry still pending");
    }

    #[test]
    fn data_matches_exact_and_prefix_simultaneously() {
        let mut pit = Pit::new();
        pit.insert(&name("/col/f/0"), 1, false, FaceId::APP, t(4));
        pit.insert(&name("/col"), 2, true, FaceId::WIRELESS, t(4));
        let matched = pit.take_matching(&name("/col/f/0"));
        assert_eq!(matched.len(), 2);
    }

    #[test]
    fn expiry_removes_and_reports() {
        let mut pit = Pit::new();
        pit.insert(&name("/a"), 1, false, FaceId::APP, t(4));
        pit.insert(&name("/b"), 2, false, FaceId::APP, t(8));
        assert_eq!(pit.next_expiry(), Some(t(4)));
        let expired = pit.expire(t(5));
        assert_eq!(expired, vec![name("/a")]);
        assert_eq!(pit.len(), 1);
        assert_eq!(pit.expire(t(5)), Vec::<Name>::new());
    }

    #[test]
    fn state_bytes_reflect_entries() {
        let mut pit = Pit::new();
        assert_eq!(pit.state_bytes(), 0);
        pit.insert(&name("/a/b/c"), 1, false, FaceId::APP, t(4));
        assert!(pit.state_bytes() > 0);
    }
}
