//! Faces: the forwarder's attachment points.
//!
//! In this off-the-grid setting every node has exactly two faces — the local
//! application and the broadcast wireless channel — but the forwarder keeps
//! the general NFD face abstraction so tests can build richer topologies.

use std::fmt;

/// Identifies a face of a forwarder.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaceId(pub u32);

impl FaceId {
    /// The local application face.
    pub const APP: FaceId = FaceId(0);
    /// The broadcast wireless face.
    pub const WIRELESS: FaceId = FaceId(1);
}

impl fmt::Debug for FaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaceId::APP => write!(f, "face(app)"),
            FaceId::WIRELESS => write!(f, "face(wifi)"),
            FaceId(n) => write!(f, "face({n})"),
        }
    }
}

impl fmt::Display for FaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_faces_are_distinct() {
        assert_ne!(FaceId::APP, FaceId::WIRELESS);
    }

    #[test]
    fn debug_names_well_known_faces() {
        assert_eq!(format!("{:?}", FaceId::APP), "face(app)");
        assert_eq!(format!("{:?}", FaceId::WIRELESS), "face(wifi)");
        assert_eq!(format!("{:?}", FaceId(7)), "face(7)");
    }
}
