//! The Content Store: an in-network cache of Data packets.
//!
//! Pure forwarders in DAPES "store data transmissions they overhear in their
//! CS, thus satisfying received requests with cached data" (paper §V-A); the
//! CS is also what lets a repo or any intermediate node answer Interests for
//! popular collection packets without reaching the producer.
//!
//! The store implements NDN freshness semantics: a Data packet is *fresh*
//! until its FreshnessPeriod elapses after insertion, and Interests carrying
//! MustBeFresh are only satisfied by fresh entries. Signalling data
//! (discovery replies, bitmaps) relies on this to avoid being answered from
//! stale caches forever; immutable collection packets carry no freshness
//! and are served from cache indefinitely.
//!
//! # Storage architecture
//!
//! A production swarm caches millions of collection segments, so the store
//! is bounded by a [`CsBudget`] — either an entry count (the pre-budget
//! behaviour, kept as the trace-equivalence baseline) or a **memory budget
//! in bytes**, accounted by each packet's wire size plus a fixed per-entry
//! bookkeeping overhead. Which entry goes when the budget is exceeded is
//! decided by a pluggable [`EvictionPolicy`] — [`FifoPolicy`] (default),
//! [`LruPolicy`], [`LfuPolicy`] or [`CostAwarePolicy`] — all deterministic,
//! so same-seed runs stay bit-identical across processes.
//!
//! Entries live once in a slab [`Arena`]; the indexes hold `Copy` handles:
//!
//! * `exact` — a hash index keyed by the name's canonical wire value (one
//!   probe per overheard non-prefix Interest);
//! * `by_wire` — an *ordered* B-tree over the same keys, resolving
//!   CanBePrefix Interests with one range walk;
//! * `digests` — an optional content-hash map keyed by each packet's
//!   implicit SHA-256 digest, so a digest-addressed request resolves in one
//!   probe without touching the name indexes (the content-addressed half of
//!   the index/blob split used by production content stores).

use crate::arena::{Arena, ArenaRef};
use crate::hash::FxBuildHasher;
use crate::name::Name;
use crate::packet::Data;
use dapes_crypto::digest::Digest;
use dapes_netsim::time::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Bound;
use std::sync::Arc;

/// Fixed per-entry bookkeeping overhead charged against a byte budget on
/// top of the packet's wire size (arena slot, index nodes, shared key).
pub const ENTRY_OVERHEAD: usize = 64;

#[derive(Clone, Debug)]
struct CsEntry {
    data: Data,
    inserted: SimTime,
    /// The name's canonical wire-value key, shared with the wire index so
    /// eviction never re-encodes the name.
    wire_key: Arc<[u8]>,
    /// The exact bytes this entry was charged against the budget — stored
    /// so eviction subtracts precisely what insertion added even if the
    /// accounting formula changes between the two (no drift, no underflow).
    size: usize,
    /// Re-fetch cost hint (hop distance to the origin) consulted by
    /// [`CostAwarePolicy`].
    cost: u32,
    /// Implicit digest, present when the digest index is enabled.
    digest: Option<Digest>,
}

impl CsEntry {
    /// NDN freshness: an entry satisfies MustBeFresh only while inside its
    /// FreshnessPeriod. A `freshness_ms` of 0 (the encoding for "no
    /// FreshnessPeriod", which immutable collection segments use) is
    /// *never* fresh: the segment is served to freshness-agnostic
    /// Interests indefinitely but can never answer MustBeFresh.
    fn is_fresh(&self, now: SimTime) -> bool {
        self.data.freshness_ms() > 0
            && now.since(self.inserted) <= SimDuration::from_millis(self.data.freshness_ms())
    }
}

/// How a [`ContentStore`] bounds its contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsBudget {
    /// At most this many packets (the pre-budget behaviour; the default
    /// constructor uses it so golden traces stay bit-identical).
    Count(usize),
    /// At most this many bytes, wire-size accounted: each entry is charged
    /// its encoded wire length plus [`ENTRY_OVERHEAD`].
    Bytes(usize),
}

impl CsBudget {
    /// A budget of zero caches nothing at all.
    pub fn is_zero(self) -> bool {
        matches!(self, CsBudget::Count(0) | CsBudget::Bytes(0))
    }
}

/// The built-in eviction policies, as a config-friendly enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvictionPolicyKind {
    /// Evict in insertion order ([`FifoPolicy`], the baseline).
    #[default]
    Fifo,
    /// Evict the least recently *served* entry ([`LruPolicy`]).
    Lru,
    /// Evict the least frequently served entry ([`LfuPolicy`]).
    Lfu,
    /// Evict the cheapest-to-refetch entry first ([`CostAwarePolicy`]).
    CostAware,
}

impl EvictionPolicyKind {
    /// Every built-in policy, FIFO (the baseline) first.
    pub const ALL: [EvictionPolicyKind; 4] = [
        EvictionPolicyKind::Fifo,
        EvictionPolicyKind::Lru,
        EvictionPolicyKind::Lfu,
        EvictionPolicyKind::CostAware,
    ];

    /// The stable report/config label.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicyKind::Fifo => "fifo",
            EvictionPolicyKind::Lru => "lru",
            EvictionPolicyKind::Lfu => "lfu",
            EvictionPolicyKind::CostAware => "cost",
        }
    }

    /// Instantiates the policy.
    pub fn make(self) -> Box<dyn EvictionPolicy> {
        match self {
            EvictionPolicyKind::Fifo => Box::new(FifoPolicy::default()),
            EvictionPolicyKind::Lru => Box::new(LruPolicy::default()),
            EvictionPolicyKind::Lfu => Box::new(LfuPolicy::default()),
            EvictionPolicyKind::CostAware => Box::new(CostAwarePolicy::default()),
        }
    }
}

/// Decides which cached entry leaves when the store exceeds its budget.
///
/// The store drives the policy through five hooks: [`on_insert`] when a
/// new entry enters, [`on_refresh`] when an existing name is re-inserted
/// (FIFO deliberately keeps the original rank here — that is the
/// pre-budget behaviour the golden traces pin — while recency/frequency
/// policies treat a refresh as a touch), [`on_hit`] when a lookup serves
/// the entry, [`pop_victim`] when the store is over budget, and [`clear`].
///
/// Implementations **must be deterministic**: victim order may depend only
/// on the sequence of hook calls, never on hash iteration order, wall
/// clock or addresses. All four built-ins key their ranks on monotonic
/// logical clocks and break ties by arrival order, so same-workload runs
/// are bit-identical across processes.
///
/// [`on_insert`]: EvictionPolicy::on_insert
/// [`on_refresh`]: EvictionPolicy::on_refresh
/// [`on_hit`]: EvictionPolicy::on_hit
/// [`pop_victim`]: EvictionPolicy::pop_victim
/// [`clear`]: EvictionPolicy::clear
pub trait EvictionPolicy: std::fmt::Debug + Send {
    /// Which built-in (or closest) flavour this policy is.
    fn kind(&self) -> EvictionPolicyKind;
    /// A new entry entered the store.
    fn on_insert(&mut self, handle: ArenaRef, cost: u32);
    /// An existing entry was re-inserted (refreshed) in place.
    fn on_refresh(&mut self, handle: ArenaRef, cost: u32);
    /// A lookup served this entry.
    fn on_hit(&mut self, handle: ArenaRef);
    /// The next entry to evict, removed from the policy's own books.
    fn pop_victim(&mut self) -> Option<ArenaRef>;
    /// Entries currently tracked (must equal the store's live count).
    fn tracked(&self) -> usize;
    /// Forget everything.
    fn clear(&mut self);
    /// Boxed clone, so [`ContentStore`] stays `Clone`.
    fn clone_box(&self) -> Box<dyn EvictionPolicy>;
}

impl Clone for Box<dyn EvictionPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// First-in-first-out eviction: the original Content Store behaviour and
/// the trace-equivalence baseline. Hits and refreshes do not move an
/// entry; victims leave in arrival order.
#[derive(Clone, Debug, Default)]
pub struct FifoPolicy {
    queue: VecDeque<ArenaRef>,
}

impl EvictionPolicy for FifoPolicy {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::Fifo
    }
    fn on_insert(&mut self, handle: ArenaRef, _cost: u32) {
        self.queue.push_back(handle);
    }
    fn on_refresh(&mut self, _handle: ArenaRef, _cost: u32) {}
    fn on_hit(&mut self, _handle: ArenaRef) {}
    fn pop_victim(&mut self) -> Option<ArenaRef> {
        self.queue.pop_front()
    }
    fn tracked(&self) -> usize {
        self.queue.len()
    }
    fn clear(&mut self) {
        self.queue.clear();
    }
    fn clone_box(&self) -> Box<dyn EvictionPolicy> {
        Box::new(self.clone())
    }
}

/// Least-recently-used eviction: every served hit (and every refresh)
/// moves the entry to the most-recent end of a logical clock; victims
/// leave oldest-access first.
#[derive(Clone, Debug, Default)]
pub struct LruPolicy {
    rank: BTreeMap<u64, ArenaRef>,
    stamp: HashMap<ArenaRef, u64, FxBuildHasher>,
    clock: u64,
}

impl LruPolicy {
    fn touch(&mut self, handle: ArenaRef) {
        if let Some(old) = self.stamp.get(&handle).copied() {
            self.rank.remove(&old);
        }
        self.clock += 1;
        self.rank.insert(self.clock, handle);
        self.stamp.insert(handle, self.clock);
    }
}

impl EvictionPolicy for LruPolicy {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::Lru
    }
    fn on_insert(&mut self, handle: ArenaRef, _cost: u32) {
        self.touch(handle);
    }
    fn on_refresh(&mut self, handle: ArenaRef, _cost: u32) {
        self.touch(handle);
    }
    fn on_hit(&mut self, handle: ArenaRef) {
        self.touch(handle);
    }
    fn pop_victim(&mut self) -> Option<ArenaRef> {
        let (&stamp, &handle) = self.rank.iter().next()?;
        self.rank.remove(&stamp);
        self.stamp.remove(&handle);
        Some(handle)
    }
    fn tracked(&self) -> usize {
        self.stamp.len()
    }
    fn clear(&mut self) {
        self.rank.clear();
        self.stamp.clear();
        self.clock = 0;
    }
    fn clone_box(&self) -> Box<dyn EvictionPolicy> {
        Box::new(self.clone())
    }
}

/// Least-frequently-used eviction: entries rank by (hit count, arrival
/// stamp); victims leave lowest frequency first, oldest arrival breaking
/// ties — so a cold scan cannot flush the hot set.
#[derive(Clone, Debug, Default)]
pub struct LfuPolicy {
    rank: BTreeMap<(u64, u64), ArenaRef>,
    pos: HashMap<ArenaRef, (u64, u64), FxBuildHasher>,
    clock: u64,
}

impl LfuPolicy {
    fn bump(&mut self, handle: ArenaRef) {
        if let Some(key) = self.pos.get(&handle).copied() {
            self.rank.remove(&key);
            let next = (key.0 + 1, key.1);
            self.rank.insert(next, handle);
            self.pos.insert(handle, next);
        }
    }
}

impl EvictionPolicy for LfuPolicy {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::Lfu
    }
    fn on_insert(&mut self, handle: ArenaRef, _cost: u32) {
        self.clock += 1;
        let key = (0, self.clock);
        self.rank.insert(key, handle);
        self.pos.insert(handle, key);
    }
    fn on_refresh(&mut self, handle: ArenaRef, _cost: u32) {
        self.bump(handle);
    }
    fn on_hit(&mut self, handle: ArenaRef) {
        self.bump(handle);
    }
    fn pop_victim(&mut self) -> Option<ArenaRef> {
        let (&key, &handle) = self.rank.iter().next()?;
        self.rank.remove(&key);
        self.pos.remove(&handle);
        Some(handle)
    }
    fn tracked(&self) -> usize {
        self.pos.len()
    }
    fn clear(&mut self) {
        self.rank.clear();
        self.pos.clear();
        self.clock = 0;
    }
    fn clone_box(&self) -> Box<dyn EvictionPolicy> {
        Box::new(self.clone())
    }
}

/// Cost-aware eviction by hop distance: entries carry a re-fetch cost
/// hint (hops to the origin, see [`ContentStore::insert_with_cost`]);
/// victims leave cheapest-to-refetch first, oldest arrival breaking
/// ties, so content whose producer is far away survives the longest.
#[derive(Clone, Debug, Default)]
pub struct CostAwarePolicy {
    rank: BTreeMap<(u32, u64), ArenaRef>,
    pos: HashMap<ArenaRef, (u32, u64), FxBuildHasher>,
    clock: u64,
}

impl CostAwarePolicy {
    fn place(&mut self, handle: ArenaRef, cost: u32) {
        if let Some(key) = self.pos.get(&handle).copied() {
            self.rank.remove(&key);
        }
        self.clock += 1;
        let key = (cost, self.clock);
        self.rank.insert(key, handle);
        self.pos.insert(handle, key);
    }
}

impl EvictionPolicy for CostAwarePolicy {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::CostAware
    }
    fn on_insert(&mut self, handle: ArenaRef, cost: u32) {
        self.place(handle, cost);
    }
    fn on_refresh(&mut self, handle: ArenaRef, cost: u32) {
        self.place(handle, cost);
    }
    fn on_hit(&mut self, _handle: ArenaRef) {}
    fn pop_victim(&mut self) -> Option<ArenaRef> {
        let (&key, &handle) = self.rank.iter().next()?;
        self.rank.remove(&key);
        self.pos.remove(&handle);
        Some(handle)
    }
    fn tracked(&self) -> usize {
        self.pos.len()
    }
    fn clear(&mut self) {
        self.rank.clear();
        self.pos.clear();
        self.clock = 0;
    }
    fn clone_box(&self) -> Box<dyn EvictionPolicy> {
        Box::new(self.clone())
    }
}

/// Cumulative Content Store counters. Hits and misses decompose lookups
/// exactly: every public lookup records one of the two, so
/// `hits + misses == lookups` always holds (asserted by
/// [`ContentStore::audit`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CsStats {
    /// Lookups through any public lookup method.
    pub lookups: u64,
    /// Lookups that returned a packet.
    pub hits: u64,
    /// Lookups that returned nothing.
    pub misses: u64,
    /// New entries admitted.
    pub insertions: u64,
    /// Re-inserts that refreshed an existing entry in place.
    pub refreshes: u64,
    /// Entries evicted over budget.
    pub evictions: u64,
    /// Packets rejected because they alone exceed a byte budget.
    pub rejected_oversize: u64,
}

/// The two table generations a Content Store can run on. Behaviour is
/// identical; only the cost model differs, which is exactly what the
/// scheduler benchmark's eager-vs-lazy axis prices.
#[derive(Clone, Debug)]
enum Tables {
    /// Current generation: every cached entry lives in the slab arena
    /// exactly once; the wire indexes, digest index and eviction policy
    /// hold only `Copy` handles, so refresh and eviction touch one slab
    /// slot instead of cloning `Data`/`Name` per index.
    Wire {
        arena: Arena<CsEntry>,
        /// Hash index keyed by [`Name::to_wire_value`]: the one-probe
        /// exact lookup every overheard non-prefix Interest pays, from
        /// borrowed name bytes or from a `Name` encoded once by the
        /// caller.
        exact: HashMap<Arc<[u8]>, ArenaRef, FxBuildHasher>,
        /// *Ordered* wire index over the same keys. Because
        /// byte-lexicographic order of canonical wire values equals NDN
        /// canonical `Name` order, and a name's wire value byte-extends
        /// all of its prefixes', one ordered range walk resolves a
        /// CanBePrefix Interest with the same first match a `Name`-keyed
        /// walk returns. No `Name` is built either way.
        by_wire: BTreeMap<Arc<[u8]>, ArenaRef>,
        /// Content-hash half of the dual index: implicit SHA-256 digest →
        /// entry, maintained only when the digest index is enabled.
        digests: HashMap<Digest, ArenaRef, FxBuildHasher>,
    },
    /// Pre-arena generation, kept as a benchmarkable cost model of the
    /// old control plane: a `Name`-keyed ordered map owning the entries
    /// plus a wire mirror holding a full clone of each — every insert
    /// pays two tree searches and an entry clone, every `Name` lookup a
    /// component-wise tree walk. Always FIFO.
    Legacy {
        entries: BTreeMap<Name, CsEntry>,
        by_wire: BTreeMap<Arc<[u8]>, CsEntry>,
        fifo: VecDeque<Name>,
    },
}

/// A budget-bounded Data cache with pluggable eviction, prefix lookup,
/// an optional content-hash index and freshness semantics.
///
/// [`ContentStore::new`] keeps the historical shape — an entry-count cap
/// with FIFO eviction — bit-identical to the pre-budget store, which is
/// what the simulator's golden traces pin. [`ContentStore::with_budget`]
/// opens the production shape: a wire-size-accounted byte budget and any
/// [`EvictionPolicy`].
///
/// [`ContentStore::legacy`] runs on the previous table generation
/// (`Name`-keyed maps with cloned entries), observable-behaviour-identical
/// but with the old cost model; the scheduler benchmark's eager modes use
/// it so the baseline keeps pricing the control plane the wire-arena
/// tables replaced.
///
/// # Examples
///
/// ```
/// use dapes_ndn::cs::{ContentStore, CsBudget, EvictionPolicyKind};
/// use dapes_ndn::packet::Data;
/// use dapes_ndn::name::Name;
/// use dapes_netsim::time::SimTime;
///
/// let mut cs = ContentStore::with_budget(
///     CsBudget::Bytes(64 * 1024),
///     EvictionPolicyKind::Lru,
/// );
/// let t = SimTime::ZERO;
/// cs.insert(Data::new(Name::from_uri("/col/f/0"), vec![0]), t);
/// assert!(cs.lookup(&Name::from_uri("/col/f/0"), false, false, t).is_some());
/// assert!(cs.lookup(&Name::from_uri("/col"), true, false, t).is_some());
/// assert_eq!(cs.stats().hits, 2);
/// ```
#[derive(Clone, Debug)]
pub struct ContentStore {
    tables: Tables,
    budget: CsBudget,
    bytes: usize,
    policy: RefCell<Box<dyn EvictionPolicy>>,
    digest_index: bool,
    lookups: Cell<u64>,
    hits: Cell<u64>,
    insertions: u64,
    refreshes: u64,
    evictions: u64,
    rejected_oversize: u64,
}

impl ContentStore {
    /// Creates a store holding at most `capacity` packets on the
    /// wire-arena tables with FIFO eviction — the pre-budget behaviour,
    /// byte for byte. A capacity of 0 caches nothing.
    pub fn new(capacity: usize) -> Self {
        Self::with_budget(CsBudget::Count(capacity), EvictionPolicyKind::Fifo)
    }

    /// Creates a store bounded by `budget` with the given eviction policy,
    /// on the wire-arena tables.
    pub fn with_budget(budget: CsBudget, policy: EvictionPolicyKind) -> Self {
        ContentStore {
            tables: Tables::Wire {
                arena: Arena::new(),
                exact: HashMap::default(),
                by_wire: BTreeMap::new(),
                digests: HashMap::default(),
            },
            budget,
            bytes: 0,
            policy: RefCell::new(policy.make()),
            digest_index: false,
            lookups: Cell::new(0),
            hits: Cell::new(0),
            insertions: 0,
            refreshes: 0,
            evictions: 0,
            rejected_oversize: 0,
        }
    }

    /// Creates a store on the legacy (pre-arena) table generation:
    /// count-capped, FIFO — the original cost model.
    pub fn legacy(capacity: usize) -> Self {
        ContentStore {
            tables: Tables::Legacy {
                entries: BTreeMap::new(),
                by_wire: BTreeMap::new(),
                fifo: VecDeque::new(),
            },
            budget: CsBudget::Count(capacity),
            bytes: 0,
            policy: RefCell::new(EvictionPolicyKind::Fifo.make()),
            digest_index: false,
            lookups: Cell::new(0),
            hits: Cell::new(0),
            insertions: 0,
            refreshes: 0,
            evictions: 0,
            rejected_oversize: 0,
        }
    }

    /// Enables the content-hash (implicit-digest) index, the
    /// content-addressed half of the dual index. Each subsequent insert
    /// computes the packet's implicit SHA-256 digest and
    /// [`ContentStore::lookup_digest`] resolves it in one probe.
    ///
    /// # Panics
    ///
    /// Panics if the store already holds entries (their digests were never
    /// computed) or runs on the legacy tables.
    pub fn with_digest_index(mut self) -> Self {
        assert!(
            self.is_empty(),
            "enable the digest index before inserting entries"
        );
        assert!(
            matches!(self.tables, Tables::Wire { .. }),
            "the legacy tables have no digest index"
        );
        self.digest_index = true;
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> CsBudget {
        self.budget
    }

    /// The configured eviction policy flavour.
    pub fn policy_kind(&self) -> EvictionPolicyKind {
        self.policy.borrow().kind()
    }

    /// Re-bounds the store at runtime. Shrinking below the current
    /// contents evicts immediately (policy order) until the new budget
    /// holds; the byte accounting is exact before the call returns.
    pub fn set_budget(&mut self, budget: CsBudget) {
        self.budget = budget;
        self.evict_over_budget();
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CsStats {
        let lookups = self.lookups.get();
        let hits = self.hits.get();
        CsStats {
            lookups,
            hits,
            misses: lookups - hits,
            insertions: self.insertions,
            refreshes: self.refreshes,
            evictions: self.evictions,
            rejected_oversize: self.rejected_oversize,
        }
    }

    /// Number of cached packets.
    pub fn len(&self) -> usize {
        match &self.tables {
            Tables::Wire { exact, .. } => exact.len(),
            Tables::Legacy { entries, .. } => entries.len(),
        }
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget (exactly the sum of the
    /// live entries' accounted sizes).
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }

    /// Approximate bytes of cached state (Table I memory proxy), including
    /// the exact-match wire index's key bytes and per-entry overhead (its
    /// `Data` clones share the cached packets' buffers, so only the
    /// bookkeeping is counted).
    pub fn state_bytes(&self) -> usize {
        let index_bytes = match &self.tables {
            Tables::Wire { by_wire, .. } => by_wire.keys().map(|k| k.len() + 48).sum::<usize>(),
            Tables::Legacy { by_wire, .. } => by_wire.keys().map(|k| k.len() + 48).sum::<usize>(),
        };
        self.bytes + index_bytes
    }

    /// Live entries in the slab arena (mirrors [`ContentStore::len`];
    /// exported as the `cs_arena_live` stat). Zero on the legacy tables,
    /// which never touch the arena.
    pub fn arena_live(&self) -> usize {
        match &self.tables {
            Tables::Wire { arena, .. } => arena.live(),
            Tables::Legacy { .. } => 0,
        }
    }

    /// Arena slots ever allocated — bounded by peak cache occupancy, not
    /// by insert volume. Zero on the legacy tables.
    pub fn arena_allocated(&self) -> usize {
        match &self.tables {
            Tables::Wire { arena, .. } => arena.allocated(),
            Tables::Legacy { .. } => 0,
        }
    }

    /// What one packet is charged against the budget: the historical
    /// content + name-state formula under [`CsBudget::Count`] (keeping the
    /// Table I proxy identical to the pre-budget store), the wire size
    /// plus [`ENTRY_OVERHEAD`] under [`CsBudget::Bytes`].
    fn entry_size(&self, data: &Data) -> usize {
        match self.budget {
            CsBudget::Count(_) => data.content().len() + data.name().state_bytes() + 64,
            CsBudget::Bytes(_) => data.wire_size() + ENTRY_OVERHEAD,
        }
    }

    fn over_budget(&self) -> bool {
        match self.budget {
            CsBudget::Count(n) => self.len() > n,
            CsBudget::Bytes(b) => self.bytes > b,
        }
    }

    /// Inserts a Data packet with re-fetch cost 0. See
    /// [`ContentStore::insert_with_cost`].
    pub fn insert(&mut self, data: Data, now: SimTime) {
        self.insert_with_cost(data, 0, now);
    }

    /// Inserts a Data packet, evicting in policy order while over budget.
    ///
    /// Re-inserting an existing name refreshes the stored packet (and its
    /// freshness clock) in place without consuming extra capacity; the
    /// eviction rank refreshes per policy — FIFO keeps the original
    /// arrival rank (the pre-budget behaviour golden traces pin), the
    /// recency/frequency/cost policies treat the refresh as a touch. A
    /// zero budget caches nothing — the entry never enters the tables, so
    /// a refresh can't resurrect it either. Under a byte budget, a packet
    /// that alone exceeds the whole budget is rejected outright (counted
    /// in [`CsStats::rejected_oversize`]) instead of flushing every other
    /// entry on its way to an inevitable self-eviction; an existing entry
    /// under the same name stays untouched.
    ///
    /// `cost` is the re-fetch cost hint (hop distance to the origin)
    /// consulted by [`CostAwarePolicy`]; other policies ignore it.
    pub fn insert_with_cost(&mut self, data: Data, cost: u32, now: SimTime) {
        if self.budget.is_zero() {
            return;
        }
        let size = self.entry_size(&data);
        if let CsBudget::Bytes(b) = self.budget {
            if size > b {
                self.rejected_oversize += 1;
                return;
            }
        }
        let digest = if self.digest_index {
            Some(data.implicit_digest())
        } else {
            None
        };
        match &mut self.tables {
            Tables::Wire {
                arena,
                exact,
                by_wire,
                digests,
            } => {
                // Encode the name once; on a miss, entry and both wire
                // indexes share the key.
                let wire_key: Arc<[u8]> = data.name().to_wire_value().into();
                if let Some(&handle) = exact.get(&*wire_key) {
                    // Refresh in place: the indexes are untouched (same
                    // name, same digest-of-identical-wire unless the
                    // content changed, which the digest map tracks).
                    let entry = arena.get_mut(handle).expect("indexed handles are live");
                    let old_size = entry.size;
                    if entry.digest != digest {
                        if let Some(old) = entry.digest {
                            digests.remove(&old);
                        }
                        if let Some(new) = digest {
                            digests.insert(new, handle);
                        }
                        entry.digest = digest;
                    }
                    entry.data = data;
                    entry.inserted = now;
                    entry.size = size;
                    entry.cost = cost;
                    self.bytes = self.bytes.saturating_sub(old_size) + size;
                    self.refreshes += 1;
                    self.policy.get_mut().on_refresh(handle, cost);
                } else {
                    let handle = arena.insert(CsEntry {
                        data,
                        inserted: now,
                        wire_key: wire_key.clone(),
                        size,
                        cost,
                        digest,
                    });
                    exact.insert(wire_key.clone(), handle);
                    by_wire.insert(wire_key, handle);
                    if let Some(d) = digest {
                        digests.insert(d, handle);
                    }
                    self.bytes += size;
                    self.insertions += 1;
                    self.policy.get_mut().on_insert(handle, cost);
                }
            }
            Tables::Legacy {
                entries,
                by_wire,
                fifo,
            } => {
                let name = data.name().clone();
                let wire_key: Arc<[u8]> = name.to_wire_value().into();
                let entry = CsEntry {
                    data,
                    inserted: now,
                    wire_key: wire_key.clone(),
                    size,
                    cost,
                    digest: None,
                };
                by_wire.insert(wire_key, entry.clone());
                if let Some(old) = entries.insert(name.clone(), entry) {
                    self.bytes = self.bytes.saturating_sub(old.size) + size;
                    self.refreshes += 1;
                    return;
                }
                self.bytes += size;
                self.insertions += 1;
                fifo.push_back(name);
            }
        }
        self.evict_over_budget();
    }

    /// Evicts in policy order until the budget holds again. The byte
    /// accounting subtracts each victim's recorded size with saturating
    /// arithmetic, so `bytes` always equals the sum over live entries and
    /// can never underflow.
    fn evict_over_budget(&mut self) {
        while self.over_budget() {
            match &mut self.tables {
                Tables::Wire {
                    arena,
                    exact,
                    by_wire,
                    digests,
                } => {
                    let Some(victim) = self.policy.get_mut().pop_victim() else {
                        return;
                    };
                    let Some(old) = arena.remove(victim) else {
                        // A stale handle (already removed elsewhere) costs
                        // one loop turn and is skipped; the indexes were
                        // cleaned when the entry actually left.
                        continue;
                    };
                    exact.remove(&*old.wire_key);
                    by_wire.remove(&*old.wire_key);
                    if let Some(d) = old.digest {
                        digests.remove(&d);
                    }
                    self.bytes = self.bytes.saturating_sub(old.size);
                }
                Tables::Legacy {
                    entries,
                    by_wire,
                    fifo,
                } => {
                    let Some(victim) = fifo.pop_front() else {
                        return;
                    };
                    let Some(old) = entries.remove(&victim) else {
                        continue;
                    };
                    by_wire.remove(&*old.wire_key);
                    self.bytes = self.bytes.saturating_sub(old.size);
                }
            }
            self.evictions += 1;
        }
    }

    fn record(&self, hit: bool) {
        self.lookups.set(self.lookups.get() + 1);
        if hit {
            self.hits.set(self.hits.get() + 1);
        }
    }

    /// Looks up a packet for an Interest with the given semantics:
    /// `can_be_prefix` also matches names extending `name`;
    /// `must_be_fresh` only matches entries still within their
    /// FreshnessPeriod.
    pub fn lookup(
        &self,
        name: &Name,
        can_be_prefix: bool,
        must_be_fresh: bool,
        now: SimTime,
    ) -> Option<&Data> {
        match &self.tables {
            Tables::Wire { .. } => {
                let wire = name.to_wire_value();
                if can_be_prefix {
                    self.lookup_wire_prefix(&wire, must_be_fresh, now)
                } else {
                    self.lookup_wire_exact(&wire, must_be_fresh, now)
                }
            }
            Tables::Legacy { entries, .. } => {
                let found = if can_be_prefix {
                    entries
                        .range(name.clone()..)
                        .take_while(|(n, _)| name.is_prefix_of(n))
                        .find(|(_, e)| !must_be_fresh || e.is_fresh(now))
                        .map(|(_, e)| &e.data)
                } else {
                    entries
                        .get(name)
                        .filter(|e| !must_be_fresh || e.is_fresh(now))
                        .map(|e| &e.data)
                };
                self.record(found.is_some());
                found
            }
        }
    }

    /// Exact-name lookup ignoring freshness.
    pub fn lookup_exact(&self, name: &Name) -> Option<&Data> {
        let found = match &self.tables {
            Tables::Wire { arena, exact, .. } => {
                exact.get(name.to_wire_value().as_slice()).map(|&h| {
                    self.policy.borrow_mut().on_hit(h);
                    &arena.get(h).expect("indexed handles are live").data
                })
            }
            Tables::Legacy { entries, .. } => entries.get(name).map(|e| &e.data),
        };
        self.record(found.is_some());
        found
    }

    /// Exact-name lookup against a peeked frame's borrowed name bytes, with
    /// the same freshness semantics as [`ContentStore::lookup`] for a
    /// non-CanBePrefix Interest — one hash probe, no `Name` construction.
    pub fn lookup_wire_exact(
        &self,
        name_wire: &[u8],
        must_be_fresh: bool,
        now: SimTime,
    ) -> Option<&Data> {
        let found = match &self.tables {
            Tables::Wire { arena, exact, .. } => exact
                .get(name_wire)
                .map(|&h| (h, arena.get(h).expect("indexed handles are live")))
                .filter(|(_, e)| !must_be_fresh || e.is_fresh(now))
                .map(|(h, e)| {
                    self.policy.borrow_mut().on_hit(h);
                    &e.data
                }),
            Tables::Legacy { by_wire, .. } => by_wire
                .get(name_wire)
                .filter(|e| !must_be_fresh || e.is_fresh(now))
                .map(|e| &e.data),
        };
        self.record(found.is_some());
        found
    }

    /// Prefix lookup against a peeked frame's borrowed name bytes, with the
    /// same semantics — and, crucially, the same iteration order and
    /// therefore the same first match — as [`ContentStore::lookup`] with
    /// `can_be_prefix`. One ordered range walk, no `Name` construction.
    ///
    /// The caller must have validated that `name_wire` is a *complete* name
    /// TLV region (e.g. via [`crate::name::wire_component_boundaries`]): a
    /// region truncated mid-component could otherwise byte-prefix-match a
    /// cached name that is not a semantic extension of it.
    pub fn lookup_wire_prefix(
        &self,
        name_wire: &[u8],
        must_be_fresh: bool,
        now: SimTime,
    ) -> Option<&Data> {
        let found = match &self.tables {
            Tables::Wire { arena, by_wire, .. } => by_wire
                .range::<[u8], _>((Bound::Included(name_wire), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(name_wire))
                .map(|(_, &h)| (h, arena.get(h).expect("indexed handles are live")))
                .find(|(_, e)| !must_be_fresh || e.is_fresh(now))
                .map(|(h, e)| {
                    self.policy.borrow_mut().on_hit(h);
                    &e.data
                }),
            Tables::Legacy { by_wire, .. } => by_wire
                .range::<[u8], _>((Bound::Included(name_wire), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(name_wire))
                .find(|(_, e)| !must_be_fresh || e.is_fresh(now))
                .map(|(_, e)| &e.data),
        };
        self.record(found.is_some());
        found
    }

    /// Content-addressed lookup: resolves a packet by its implicit
    /// SHA-256 digest in one probe, independent of its name. Freshness is
    /// irrelevant here — a digest names immutable bytes. Returns `None`
    /// when the digest index is disabled (see
    /// [`ContentStore::with_digest_index`]) or the digest is unknown.
    pub fn lookup_digest(&self, digest: &Digest) -> Option<&Data> {
        let found = match &self.tables {
            Tables::Wire { arena, digests, .. } => digests.get(digest).map(|&h| {
                self.policy.borrow_mut().on_hit(h);
                &arena.get(h).expect("indexed handles are live").data
            }),
            Tables::Legacy { .. } => None,
        };
        self.record(found.is_some());
        found
    }

    /// Prefix lookup ignoring freshness.
    pub fn lookup_prefix(&self, prefix: &Name) -> Option<&Data> {
        self.lookup(prefix, true, false, SimTime::ZERO)
    }

    /// Removes everything (used when resetting a node). Cumulative
    /// counters are kept.
    pub fn clear(&mut self) {
        match &mut self.tables {
            Tables::Wire {
                arena,
                exact,
                by_wire,
                digests,
            } => {
                *arena = Arena::new();
                exact.clear();
                by_wire.clear();
                digests.clear();
            }
            Tables::Legacy {
                entries,
                by_wire,
                fifo,
            } => {
                entries.clear();
                by_wire.clear();
                fifo.clear();
            }
        }
        self.policy.get_mut().clear();
        self.bytes = 0;
    }

    /// Checks every cross-index invariant, returning the first violation:
    ///
    /// * the exact, ordered and digest indexes agree with the arena (no
    ///   dangling key resolves to a dead or different entry);
    /// * the eviction policy tracks exactly the live entries;
    /// * the tracked bytes equal the sum of live entries' recorded sizes;
    /// * the hit/miss counters decompose lookups exactly;
    /// * the store is within budget.
    ///
    /// Test and benchmark infrastructure; not called on hot paths.
    pub fn audit(&self) -> Result<(), String> {
        let stats = self.stats();
        if stats.hits + stats.misses != stats.lookups {
            return Err(format!(
                "counters do not decompose: {} hits + {} misses != {} lookups",
                stats.hits, stats.misses, stats.lookups
            ));
        }
        if self.over_budget() {
            return Err(format!(
                "over budget after quiescence: {} entries / {} bytes vs {:?}",
                self.len(),
                self.bytes,
                self.budget
            ));
        }
        match &self.tables {
            Tables::Wire {
                arena,
                exact,
                by_wire,
                digests,
            } => {
                if exact.len() != by_wire.len() || exact.len() != arena.live() {
                    return Err(format!(
                        "index sizes diverge: exact {} / by_wire {} / arena {}",
                        exact.len(),
                        by_wire.len(),
                        arena.live()
                    ));
                }
                let tracked = self.policy.borrow().tracked();
                if tracked != arena.live() {
                    return Err(format!(
                        "policy tracks {} entries, arena holds {}",
                        tracked,
                        arena.live()
                    ));
                }
                let mut sum = 0usize;
                for (key, &h) in by_wire {
                    let Some(entry) = arena.get(h) else {
                        return Err(format!("dangling ordered-index key {key:?}"));
                    };
                    if entry.wire_key != *key {
                        return Err("ordered-index key resolves to a different entry".into());
                    }
                    if exact.get(key) != Some(&h) {
                        return Err("exact and ordered indexes disagree".into());
                    }
                    if let Some(d) = entry.digest {
                        if digests.get(&d) != Some(&h) {
                            return Err("digest index misses a live entry's digest".into());
                        }
                    }
                    sum += entry.size;
                }
                if digests.len() > exact.len() {
                    return Err("digest index holds more keys than live entries".into());
                }
                for (d, &h) in digests {
                    if arena.get(h).is_none() {
                        return Err(format!("dangling digest-index key {d}"));
                    }
                }
                if sum != self.bytes {
                    return Err(format!(
                        "byte accounting drifted: tracked {} vs summed {}",
                        self.bytes, sum
                    ));
                }
            }
            Tables::Legacy {
                entries, by_wire, ..
            } => {
                if entries.len() != by_wire.len() {
                    return Err(format!(
                        "legacy index sizes diverge: entries {} / by_wire {}",
                        entries.len(),
                        by_wire.len()
                    ));
                }
                let sum: usize = entries.values().map(|e| e.size).sum();
                if sum != self.bytes {
                    return Err(format!(
                        "legacy byte accounting drifted: tracked {} vs summed {}",
                        self.bytes, sum
                    ));
                }
                for (name, entry) in entries {
                    match by_wire.get(&*entry.wire_key) {
                        Some(mirror) if mirror.data.name() == name => {}
                        _ => return Err(format!("legacy wire mirror diverges at {name}")),
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(uri: &str) -> Data {
        Data::new(Name::from_uri(uri), vec![0; 16])
    }

    fn sized_data(uri: &str, bytes: usize) -> Data {
        Data::new(Name::from_uri(uri), vec![0xAB; bytes])
    }

    fn fresh_data(uri: &str, freshness_ms: u64) -> Data {
        Data::new(Name::from_uri(uri), vec![0; 16]).with_freshness_ms(freshness_ms)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Both table generations, so every behavioural test runs on each.
    fn both(capacity: usize) -> [ContentStore; 2] {
        [ContentStore::new(capacity), ContentStore::legacy(capacity)]
    }

    #[test]
    fn exact_hit_and_miss() {
        for mut cs in both(10) {
            cs.insert(data("/col/f/0"), t(0));
            assert!(cs.lookup_exact(&Name::from_uri("/col/f/0")).is_some());
            assert!(cs.lookup_exact(&Name::from_uri("/col/f/1")).is_none());
            let stats = cs.stats();
            assert_eq!((stats.hits, stats.misses, stats.lookups), (1, 1, 2));
            cs.audit().expect("clean");
        }
    }

    #[test]
    fn wire_exact_lookup_mirrors_name_lookup() {
        for mut cs in both(2) {
            cs.insert(fresh_data("/col/f/0", 1_000), t(0));
            let key = Name::from_uri("/col/f/0").to_wire_value();
            assert_eq!(
                cs.lookup_wire_exact(&key, false, t(0)),
                cs.lookup(&Name::from_uri("/col/f/0"), false, false, t(0)),
            );
            // Freshness semantics match too.
            assert!(cs.lookup_wire_exact(&key, true, t(0)).is_some());
            assert!(cs.lookup_wire_exact(&key, true, t(5)).is_none());
            assert!(cs.lookup_wire_exact(&key, false, t(5)).is_some());
            // Eviction and clear keep the index in sync.
            cs.insert(data("/a"), t(1));
            cs.insert(data("/b"), t(2)); // evicts /col/f/0
            assert!(cs.lookup_wire_exact(&key, false, t(2)).is_none());
            let b_key = Name::from_uri("/b").to_wire_value();
            assert!(cs.lookup_wire_exact(&b_key, false, t(2)).is_some());
            cs.clear();
            assert!(cs.lookup_wire_exact(&b_key, false, t(2)).is_none());
        }
    }

    #[test]
    fn wire_prefix_lookup_mirrors_name_lookup() {
        for mut cs in both(10) {
            cs.insert(data("/col/f/3"), t(0));
            cs.insert(fresh_data("/col/f/5", 1_000), t(0));
            cs.insert(data("/cole/x"), t(0));
            for (q, fresh) in [
                ("/col", false),
                ("/col", true),
                ("/col/f", false),
                ("/col/f/3", false),
                ("/col/g", false),
                ("/cole", false),
                ("/other", false),
                ("/", false),
            ] {
                let name = Name::from_uri(q);
                assert_eq!(
                    cs.lookup_wire_prefix(&name.to_wire_value(), fresh, t(0)),
                    cs.lookup(&name, true, fresh, t(0)),
                    "query {q} fresh={fresh}"
                );
            }
            // The ordered walk returns the same *first* match as the Name
            // walk, not just any match: /col/f/3 (stale-forever) precedes
            // /col/f/5.
            let got = cs
                .lookup_wire_prefix(&Name::from_uri("/col").to_wire_value(), false, t(0))
                .expect("hit");
            assert_eq!(got.name().to_string(), "/col/f/3");
            let fresh_only = cs
                .lookup_wire_prefix(&Name::from_uri("/col").to_wire_value(), true, t(0))
                .expect("fresh hit further along the range");
            assert_eq!(fresh_only.name().to_string(), "/col/f/5");
        }
    }

    #[test]
    fn prefix_hit() {
        for mut cs in both(10) {
            cs.insert(data("/col/f/3"), t(0));
            assert!(cs.lookup_prefix(&Name::from_uri("/col")).is_some());
            assert!(cs.lookup_prefix(&Name::from_uri("/col/f")).is_some());
            assert!(cs.lookup_prefix(&Name::from_uri("/col/g")).is_none());
            assert!(cs.lookup_prefix(&Name::from_uri("/other")).is_none());
        }
    }

    #[test]
    fn prefix_does_not_match_sibling() {
        for mut cs in both(10) {
            cs.insert(data("/cole/f/0"), t(0));
            // "/col" is a string prefix of "/cole" but not a name prefix.
            assert!(cs.lookup_prefix(&Name::from_uri("/col")).is_none());
        }
    }

    #[test]
    fn exact_name_prefix_query_finds_itself() {
        for mut cs in both(10) {
            cs.insert(data("/col"), t(0));
            assert!(cs.lookup_prefix(&Name::from_uri("/col")).is_some());
        }
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        for mut cs in both(2) {
            cs.insert(data("/a"), t(0));
            cs.insert(data("/b"), t(1));
            cs.insert(data("/c"), t(2));
            assert_eq!(cs.len(), 2);
            assert!(
                cs.lookup_exact(&Name::from_uri("/a")).is_none(),
                "oldest evicted"
            );
            assert!(cs.lookup_exact(&Name::from_uri("/b")).is_some());
            assert!(cs.lookup_exact(&Name::from_uri("/c")).is_some());
            assert_eq!(cs.stats().evictions, 1);
            cs.audit().expect("clean");
        }
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        for mut cs in both(2) {
            cs.insert(data("/a"), t(0));
            cs.insert(data("/a"), t(1));
            cs.insert(data("/b"), t(2));
            assert_eq!(cs.len(), 2);
            assert!(cs.lookup_exact(&Name::from_uri("/a")).is_some());
            let stats = cs.stats();
            assert_eq!((stats.insertions, stats.refreshes), (2, 1));
        }
    }

    #[test]
    fn reinsert_keeps_fifo_rank_in_both_generations() {
        // The eviction-vs-refresh contract the golden traces pin: under
        // FIFO, re-inserting an existing name refreshes the packet and
        // freshness clock but keeps the original arrival rank, so the
        // eviction order is identical in both table generations.
        for mut cs in both(2) {
            cs.insert(data("/a"), t(0));
            cs.insert(data("/b"), t(1));
            cs.insert(data("/a"), t(2)); // refresh, rank unchanged
            cs.insert(data("/c"), t(3)); // evicts /a (oldest arrival)
            assert!(cs.lookup_exact(&Name::from_uri("/a")).is_none());
            assert!(cs.lookup_exact(&Name::from_uri("/b")).is_some());
            assert!(cs.lookup_exact(&Name::from_uri("/c")).is_some());
            cs.audit().expect("no dangling keys after refresh+evict");
        }
    }

    #[test]
    fn eviction_leaves_no_dangling_wire_index_keys() {
        // Regression for the eviction-vs-refresh audit: every generation,
        // after interleaved refreshes and evictions, both wire indexes
        // must only hold keys that resolve to live entries.
        for mut cs in both(3) {
            for round in 0..20u64 {
                cs.insert(data(&format!("/n/{}", round % 7)), t(round));
                cs.insert(data(&format!("/n/{}", (round + 3) % 7)), t(round));
                cs.audit().expect("indexes in sync after every insert");
            }
        }
    }

    #[test]
    fn must_be_fresh_rejects_nonfresh_data() {
        for mut cs in both(10) {
            // No freshness period: never satisfies MustBeFresh.
            cs.insert(data("/d/x"), t(0));
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(0))
                .is_none());
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, false, t(0))
                .is_some());
        }
    }

    #[test]
    fn zero_freshness_is_never_fresh_on_every_path() {
        // Pins the immutable-segment semantics: freshness_ms == 0 means
        // "no FreshnessPeriod" — served to freshness-agnostic Interests
        // forever, NEVER to MustBeFresh — and the header fast path
        // (borrowed wire bytes) must agree with the eager Name path at
        // every instant, including t == insertion time.
        for mut cs in both(10) {
            let name = Name::from_uri("/col/seg/0");
            cs.insert(fresh_data("/col/seg/0", 0), t(0));
            let wire = name.to_wire_value();
            for now in [t(0), t(1), t(1_000_000)] {
                assert!(cs.lookup(&name, false, true, now).is_none(), "{now:?}");
                assert!(cs.lookup_wire_exact(&wire, true, now).is_none());
                assert!(cs.lookup_wire_prefix(&wire, true, now).is_none());
                assert!(cs.lookup(&name, false, false, now).is_some());
                assert!(cs.lookup_wire_exact(&wire, false, now).is_some());
                assert!(cs.lookup_wire_prefix(&wire, false, now).is_some());
            }
        }
    }

    #[test]
    fn freshness_expires_over_time() {
        for mut cs in both(10) {
            cs.insert(fresh_data("/d/x", 1_000), t(10));
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(10))
                .is_some());
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(11))
                .is_some());
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(12))
                .is_none());
            // Still served to freshness-agnostic Interests.
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, false, t(12))
                .is_some());
        }
    }

    #[test]
    fn reinsert_restarts_freshness_clock() {
        for mut cs in both(10) {
            cs.insert(fresh_data("/d/x", 1_000), t(0));
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(5))
                .is_none());
            cs.insert(fresh_data("/d/x", 1_000), t(5));
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(5))
                .is_some());
        }
    }

    #[test]
    fn prefix_lookup_skips_stale_finds_fresh() {
        for mut cs in both(10) {
            cs.insert(data("/p/a"), t(0)); // stale forever
            cs.insert(fresh_data("/p/b", 10_000), t(0));
            let got = cs
                .lookup(&Name::from_uri("/p"), true, true, t(1))
                .expect("fresh entry further in the range");
            assert_eq!(got.name().to_string(), "/p/b");
        }
    }

    #[test]
    fn lookup_respects_can_be_prefix_flag() {
        for mut cs in both(10) {
            cs.insert(data("/col/f/0"), t(0));
            assert!(cs
                .lookup(&Name::from_uri("/col"), true, false, t(0))
                .is_some());
            assert!(cs
                .lookup(&Name::from_uri("/col"), false, false, t(0))
                .is_none());
        }
    }

    #[test]
    fn zero_capacity_store_caches_nothing() {
        // Regression: the old post-insert eviction loop transiently held
        // one entry at capacity 0, and a refreshing re-insert resurrected
        // it indefinitely.
        for mut cs in both(0) {
            cs.insert(data("/a"), t(0));
            assert!(cs.is_empty());
            assert_eq!(cs.state_bytes(), 0);
            cs.insert(data("/a"), t(1)); // would refresh if anything survived
            cs.insert(data("/a"), t(2));
            assert!(cs.is_empty(), "refresh must not resurrect an entry");
            assert!(cs.lookup_exact(&Name::from_uri("/a")).is_none());
            assert!(cs
                .lookup_wire_exact(&Name::from_uri("/a").to_wire_value(), false, t(2))
                .is_none());
            assert_eq!(cs.arena_live(), 0);
            assert_eq!(cs.arena_allocated(), 0, "nothing may enter the arena");
        }
    }

    #[test]
    fn zero_byte_budget_caches_nothing() {
        let mut cs = ContentStore::with_budget(CsBudget::Bytes(0), EvictionPolicyKind::Lru);
        cs.insert(data("/a"), t(0));
        assert!(cs.is_empty());
        assert_eq!(cs.arena_allocated(), 0);
        cs.audit().expect("clean");
    }

    #[test]
    fn eviction_churn_reuses_arena_slots_and_keeps_indexes_synced() {
        let mut cs = ContentStore::new(2);
        for round in 0..50u64 {
            cs.insert(data(&format!("/n/{round}")), t(round));
        }
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.arena_live(), 2);
        assert!(
            cs.arena_allocated() <= 3,
            "allocation must track capacity, not volume: {}",
            cs.arena_allocated()
        );
        // Only the two newest survive, in every index.
        for round in 0..48u64 {
            let name = Name::from_uri(&format!("/n/{round}"));
            assert!(cs.lookup_exact(&name).is_none());
            assert!(cs
                .lookup_wire_exact(&name.to_wire_value(), false, t(50))
                .is_none());
        }
        for round in 48..50u64 {
            let name = Name::from_uri(&format!("/n/{round}"));
            assert!(cs.lookup_exact(&name).is_some());
            assert!(cs
                .lookup_wire_exact(&name.to_wire_value(), false, t(50))
                .is_some());
        }
    }

    #[test]
    fn state_bytes_grow_and_shrink() {
        for mut cs in both(1) {
            assert_eq!(cs.state_bytes(), 0);
            cs.insert(data("/a"), t(0));
            let b1 = cs.state_bytes();
            assert!(b1 > 0);
            cs.insert(data("/b"), t(1)); // evicts /a
            assert!(cs.state_bytes() > 0);
            cs.clear();
            assert_eq!(cs.state_bytes(), 0);
        }
    }

    #[test]
    fn byte_budget_evicts_by_size_not_count() {
        let mut cs = ContentStore::with_budget(CsBudget::Bytes(1024), EvictionPolicyKind::Fifo);
        let per = sized_data("/a", 100).wire_size() + ENTRY_OVERHEAD;
        let fit = 1024 / per;
        for i in 0..20 {
            cs.insert(sized_data(&format!("/n/{i}"), 100), t(i as u64));
        }
        assert!(
            cs.len() <= fit,
            "{} entries exceed the byte budget",
            cs.len()
        );
        assert!(cs.resident_bytes() <= 1024);
        assert!(cs.stats().evictions > 0);
        cs.audit().expect("clean");
    }

    #[test]
    fn oversize_packet_is_rejected_not_destructive() {
        // A packet larger than the whole budget must not flush the cache
        // on its way to an inevitable self-eviction.
        let mut cs = ContentStore::with_budget(CsBudget::Bytes(2048), EvictionPolicyKind::Fifo);
        cs.insert(sized_data("/keep/a", 64), t(0));
        cs.insert(sized_data("/keep/b", 64), t(1));
        let before = cs.len();
        cs.insert(sized_data("/huge", 4096), t(2));
        assert_eq!(cs.len(), before, "resident set untouched");
        assert!(cs.lookup_exact(&Name::from_uri("/keep/a")).is_some());
        assert!(cs.lookup_exact(&Name::from_uri("/huge")).is_none());
        assert_eq!(cs.stats().rejected_oversize, 1);
        cs.audit().expect("clean");
    }

    #[test]
    fn budget_smaller_than_one_packet_holds_nothing_without_underflow() {
        let mut cs = ContentStore::with_budget(CsBudget::Bytes(16), EvictionPolicyKind::Lru);
        for i in 0..5 {
            cs.insert(sized_data(&format!("/n/{i}"), 200), t(i as u64));
            assert!(cs.is_empty());
            assert_eq!(cs.resident_bytes(), 0, "no underflow");
            cs.audit().expect("clean");
        }
        assert_eq!(cs.stats().rejected_oversize, 5);
    }

    #[test]
    fn shrinking_the_budget_evicts_immediately() {
        let mut cs = ContentStore::with_budget(CsBudget::Bytes(1 << 20), EvictionPolicyKind::Fifo);
        for i in 0..10 {
            cs.insert(sized_data(&format!("/n/{i}"), 100), t(i as u64));
        }
        assert_eq!(cs.len(), 10);
        let two = 2 * (sized_data("/n/0", 100).wire_size() + ENTRY_OVERHEAD);
        cs.set_budget(CsBudget::Bytes(two));
        assert!(cs.len() <= 2, "shrink must evict immediately: {}", cs.len());
        assert!(cs.resident_bytes() <= two);
        // FIFO: the newest entries survive.
        assert!(cs.lookup_exact(&Name::from_uri("/n/9")).is_some());
        cs.audit().expect("clean");
        // Shrinking to a count budget works the same way.
        cs.set_budget(CsBudget::Count(1));
        assert_eq!(cs.len(), 1);
        cs.set_budget(CsBudget::Count(0));
        assert!(cs.is_empty());
        assert_eq!(cs.resident_bytes(), 0);
        cs.audit().expect("clean");
    }

    #[test]
    fn lru_evicts_least_recently_served() {
        let mut cs = ContentStore::with_budget(CsBudget::Count(2), EvictionPolicyKind::Lru);
        cs.insert(data("/a"), t(0));
        cs.insert(data("/b"), t(1));
        // Serve /a, making /b the LRU victim.
        assert!(cs.lookup_exact(&Name::from_uri("/a")).is_some());
        cs.insert(data("/c"), t(2));
        assert!(cs.lookup_exact(&Name::from_uri("/a")).is_some());
        assert!(cs.lookup_exact(&Name::from_uri("/b")).is_none());
        assert!(cs.lookup_exact(&Name::from_uri("/c")).is_some());
        cs.audit().expect("clean");
    }

    #[test]
    fn lru_refresh_counts_as_a_touch() {
        let mut cs = ContentStore::with_budget(CsBudget::Count(2), EvictionPolicyKind::Lru);
        cs.insert(data("/a"), t(0));
        cs.insert(data("/b"), t(1));
        cs.insert(data("/a"), t(2)); // refresh touches /a; /b becomes victim
        cs.insert(data("/c"), t(3));
        assert!(cs.lookup_exact(&Name::from_uri("/a")).is_some());
        assert!(cs.lookup_exact(&Name::from_uri("/b")).is_none());
    }

    #[test]
    fn lfu_protects_the_hot_set_from_a_cold_scan() {
        let mut cs = ContentStore::with_budget(CsBudget::Count(3), EvictionPolicyKind::Lfu);
        cs.insert(data("/hot"), t(0));
        for _ in 0..5 {
            assert!(cs.lookup_exact(&Name::from_uri("/hot")).is_some());
        }
        // A scan of cold names churns among themselves; /hot survives.
        for i in 0..10 {
            cs.insert(data(&format!("/cold/{i}")), t(1 + i as u64));
        }
        assert!(cs.lookup_exact(&Name::from_uri("/hot")).is_some());
        assert_eq!(cs.len(), 3);
        cs.audit().expect("clean");
    }

    #[test]
    fn cost_aware_evicts_cheapest_to_refetch_first() {
        let mut cs = ContentStore::with_budget(CsBudget::Count(2), EvictionPolicyKind::CostAware);
        cs.insert_with_cost(data("/far"), 8, t(0));
        cs.insert_with_cost(data("/near"), 1, t(1));
        cs.insert_with_cost(data("/mid"), 4, t(2)); // evicts /near (cost 1)
        assert!(cs.lookup_exact(&Name::from_uri("/far")).is_some());
        assert!(cs.lookup_exact(&Name::from_uri("/near")).is_none());
        assert!(cs.lookup_exact(&Name::from_uri("/mid")).is_some());
        cs.audit().expect("clean");
    }

    #[test]
    fn digest_index_resolves_in_one_probe_and_follows_eviction() {
        let mut cs = ContentStore::with_budget(CsBudget::Count(2), EvictionPolicyKind::Fifo)
            .with_digest_index();
        let a = data("/a");
        let digest_a = a.implicit_digest();
        cs.insert(a, t(0));
        assert_eq!(
            cs.lookup_digest(&digest_a).map(|d| d.name().to_string()),
            Some("/a".to_owned())
        );
        // Refresh with different content re-keys the digest.
        let a2 = sized_data("/a", 32);
        let digest_a2 = a2.implicit_digest();
        cs.insert(a2, t(1));
        assert!(cs.lookup_digest(&digest_a).is_none(), "old digest dropped");
        assert!(cs.lookup_digest(&digest_a2).is_some());
        // Eviction drops the digest key with the entry.
        cs.insert(data("/b"), t(2));
        cs.insert(data("/c"), t(3)); // evicts /a
        assert!(cs.lookup_digest(&digest_a2).is_none());
        cs.audit().expect("clean");
        // Disabled index answers nothing.
        let plain = ContentStore::new(4);
        assert!(plain.lookup_digest(&digest_a).is_none());
    }

    #[test]
    fn policies_report_their_kind_and_labels_are_distinct() {
        let mut seen = Vec::new();
        for kind in EvictionPolicyKind::ALL {
            let cs = ContentStore::with_budget(CsBudget::Count(4), kind);
            assert_eq!(cs.policy_kind(), kind);
            assert!(!seen.contains(&kind.label()));
            seen.push(kind.label());
        }
    }

    #[test]
    fn clone_preserves_contents_policy_and_counters() {
        let mut cs = ContentStore::with_budget(CsBudget::Count(4), EvictionPolicyKind::Lru);
        cs.insert(data("/a"), t(0));
        cs.insert(data("/b"), t(1));
        assert!(cs.lookup_exact(&Name::from_uri("/a")).is_some());
        let mut cloned = cs.clone();
        assert_eq!(cloned.stats(), cs.stats());
        // The clone's LRU state matches: /b is the victim in both.
        cloned.set_budget(CsBudget::Count(1));
        assert!(cloned.lookup_exact(&Name::from_uri("/a")).is_some());
        assert!(cloned.lookup_exact(&Name::from_uri("/b")).is_none());
        cloned.audit().expect("clean");
        cs.audit().expect("original untouched");
        assert_eq!(cs.len(), 2);
    }
}
