//! The Content Store: an in-network cache of Data packets.
//!
//! Pure forwarders in DAPES "store data transmissions they overhear in their
//! CS, thus satisfying received requests with cached data" (paper §V-A); the
//! CS is also what lets a repo or any intermediate node answer Interests for
//! popular collection packets without reaching the producer.
//!
//! The store implements NDN freshness semantics: a Data packet is *fresh*
//! until its FreshnessPeriod elapses after insertion, and Interests carrying
//! MustBeFresh are only satisfied by fresh entries. Signalling data
//! (discovery replies, bitmaps) relies on this to avoid being answered from
//! stale caches forever; immutable collection packets carry no freshness
//! and are served from cache indefinitely.

use crate::name::Name;
use crate::packet::Data;
use dapes_netsim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::ops::Bound;

#[derive(Clone, Debug)]
struct CsEntry {
    data: Data,
    inserted: SimTime,
}

impl CsEntry {
    fn is_fresh(&self, now: SimTime) -> bool {
        self.data.freshness_ms() > 0
            && now.since(self.inserted) <= SimDuration::from_millis(self.data.freshness_ms())
    }
}

/// A capacity-bounded Data cache with FIFO eviction, prefix lookup and
/// freshness semantics.
///
/// # Examples
///
/// ```
/// use dapes_ndn::cs::ContentStore;
/// use dapes_ndn::packet::Data;
/// use dapes_ndn::name::Name;
/// use dapes_netsim::time::SimTime;
///
/// let mut cs = ContentStore::new(2);
/// let t = SimTime::ZERO;
/// cs.insert(Data::new(Name::from_uri("/col/f/0"), vec![0]), t);
/// assert!(cs.lookup(&Name::from_uri("/col/f/0"), false, false, t).is_some());
/// assert!(cs.lookup(&Name::from_uri("/col"), true, false, t).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct ContentStore {
    entries: BTreeMap<Name, CsEntry>,
    /// *Ordered* wire index keyed by [`Name::to_wire_value`], mirroring
    /// `entries` (the `Data` clone is cheap `Arc` sharing). Lets a peeked
    /// frame's borrowed name bytes resolve a non-prefix Interest with one
    /// probe and — because byte-lexicographic order of canonical wire
    /// values equals NDN canonical `Name` order, and a name's wire value
    /// byte-extends all of its prefixes' — a CanBePrefix Interest with the
    /// same ordered range walk [`ContentStore::lookup`] does, returning the
    /// same first match. No `Name` is built either way.
    by_wire: BTreeMap<Vec<u8>, CsEntry>,
    fifo: VecDeque<Name>,
    capacity: usize,
    bytes: usize,
}

impl ContentStore {
    /// Creates a store holding at most `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        ContentStore {
            entries: BTreeMap::new(),
            by_wire: BTreeMap::new(),
            fifo: VecDeque::new(),
            capacity,
            bytes: 0,
        }
    }

    /// Number of cached packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes of cached state (Table I memory proxy), including
    /// the exact-match wire index's key bytes and per-entry overhead (its
    /// `Data` clones share the cached packets' buffers, so only the
    /// bookkeeping is counted).
    pub fn state_bytes(&self) -> usize {
        self.bytes + self.by_wire.keys().map(|k| k.len() + 48).sum::<usize>()
    }

    /// Inserts a Data packet, evicting the oldest entry when full.
    /// Re-inserting an existing name refreshes the stored packet (and its
    /// freshness clock) without consuming extra capacity.
    pub fn insert(&mut self, data: Data, now: SimTime) {
        let name = data.name().clone();
        let size = data.content().len() + name.state_bytes() + 64;
        let entry = CsEntry {
            data,
            inserted: now,
        };
        self.by_wire.insert(name.to_wire_value(), entry.clone());
        if let Some(old) = self.entries.insert(name.clone(), entry) {
            let old_size = old.data.content().len() + name.state_bytes() + 64;
            self.bytes = self.bytes.saturating_sub(old_size) + size;
            return;
        }
        self.bytes += size;
        self.fifo.push_back(name);
        while self.entries.len() > self.capacity {
            if let Some(victim) = self.fifo.pop_front() {
                if let Some(old) = self.entries.remove(&victim) {
                    self.by_wire.remove(&victim.to_wire_value());
                    self.bytes = self
                        .bytes
                        .saturating_sub(old.data.content().len() + victim.state_bytes() + 64);
                }
            } else {
                break;
            }
        }
    }

    /// Looks up a packet for an Interest with the given semantics:
    /// `can_be_prefix` also matches names extending `name`;
    /// `must_be_fresh` only matches entries still within their
    /// FreshnessPeriod.
    pub fn lookup(
        &self,
        name: &Name,
        can_be_prefix: bool,
        must_be_fresh: bool,
        now: SimTime,
    ) -> Option<&Data> {
        if can_be_prefix {
            self.entries
                .range(name.clone()..)
                .take_while(|(n, _)| name.is_prefix_of(n))
                .find(|(_, e)| !must_be_fresh || e.is_fresh(now))
                .map(|(_, e)| &e.data)
        } else {
            self.entries
                .get(name)
                .filter(|e| !must_be_fresh || e.is_fresh(now))
                .map(|e| &e.data)
        }
    }

    /// Exact-name lookup ignoring freshness.
    pub fn lookup_exact(&self, name: &Name) -> Option<&Data> {
        self.entries.get(name).map(|e| &e.data)
    }

    /// Exact-name lookup against a peeked frame's borrowed name bytes, with
    /// the same freshness semantics as [`ContentStore::lookup`] for a
    /// non-CanBePrefix Interest — one hash probe, no `Name` construction.
    pub fn lookup_wire_exact(
        &self,
        name_wire: &[u8],
        must_be_fresh: bool,
        now: SimTime,
    ) -> Option<&Data> {
        self.by_wire
            .get(name_wire)
            .filter(|e| !must_be_fresh || e.is_fresh(now))
            .map(|e| &e.data)
    }

    /// Prefix lookup against a peeked frame's borrowed name bytes, with the
    /// same semantics — and, crucially, the same iteration order and
    /// therefore the same first match — as [`ContentStore::lookup`] with
    /// `can_be_prefix`. One ordered range walk, no `Name` construction.
    ///
    /// The caller must have validated that `name_wire` is a *complete* name
    /// TLV region (e.g. via [`crate::name::wire_component_boundaries`]): a
    /// region truncated mid-component could otherwise byte-prefix-match a
    /// cached name that is not a semantic extension of it.
    pub fn lookup_wire_prefix(
        &self,
        name_wire: &[u8],
        must_be_fresh: bool,
        now: SimTime,
    ) -> Option<&Data> {
        self.by_wire
            .range::<[u8], _>((Bound::Included(name_wire), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(name_wire))
            .find(|(_, e)| !must_be_fresh || e.is_fresh(now))
            .map(|(_, e)| &e.data)
    }

    /// Prefix lookup ignoring freshness.
    pub fn lookup_prefix(&self, prefix: &Name) -> Option<&Data> {
        self.lookup(prefix, true, false, SimTime::ZERO)
    }

    /// Removes everything (used when resetting a node).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_wire.clear();
        self.fifo.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(uri: &str) -> Data {
        Data::new(Name::from_uri(uri), vec![0; 16])
    }

    fn fresh_data(uri: &str, freshness_ms: u64) -> Data {
        Data::new(Name::from_uri(uri), vec![0; 16]).with_freshness_ms(freshness_ms)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn exact_hit_and_miss() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/col/f/0"), t(0));
        assert!(cs.lookup_exact(&Name::from_uri("/col/f/0")).is_some());
        assert!(cs.lookup_exact(&Name::from_uri("/col/f/1")).is_none());
    }

    #[test]
    fn wire_exact_lookup_mirrors_name_lookup() {
        let mut cs = ContentStore::new(2);
        cs.insert(fresh_data("/col/f/0", 1_000), t(0));
        let key = Name::from_uri("/col/f/0").to_wire_value();
        assert_eq!(
            cs.lookup_wire_exact(&key, false, t(0)),
            cs.lookup(&Name::from_uri("/col/f/0"), false, false, t(0)),
        );
        // Freshness semantics match too.
        assert!(cs.lookup_wire_exact(&key, true, t(0)).is_some());
        assert!(cs.lookup_wire_exact(&key, true, t(5)).is_none());
        assert!(cs.lookup_wire_exact(&key, false, t(5)).is_some());
        // Eviction and clear keep the index in sync.
        cs.insert(data("/a"), t(1));
        cs.insert(data("/b"), t(2)); // evicts /col/f/0
        assert!(cs.lookup_wire_exact(&key, false, t(2)).is_none());
        let b_key = Name::from_uri("/b").to_wire_value();
        assert!(cs.lookup_wire_exact(&b_key, false, t(2)).is_some());
        cs.clear();
        assert!(cs.lookup_wire_exact(&b_key, false, t(2)).is_none());
    }

    #[test]
    fn wire_prefix_lookup_mirrors_name_lookup() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/col/f/3"), t(0));
        cs.insert(fresh_data("/col/f/5", 1_000), t(0));
        cs.insert(data("/cole/x"), t(0));
        for (q, fresh) in [
            ("/col", false),
            ("/col", true),
            ("/col/f", false),
            ("/col/f/3", false),
            ("/col/g", false),
            ("/cole", false),
            ("/other", false),
            ("/", false),
        ] {
            let name = Name::from_uri(q);
            assert_eq!(
                cs.lookup_wire_prefix(&name.to_wire_value(), fresh, t(0)),
                cs.lookup(&name, true, fresh, t(0)),
                "query {q} fresh={fresh}"
            );
        }
        // The ordered walk returns the same *first* match as the Name walk,
        // not just any match: /col/f/3 (stale-forever) precedes /col/f/5.
        let got = cs
            .lookup_wire_prefix(&Name::from_uri("/col").to_wire_value(), false, t(0))
            .expect("hit");
        assert_eq!(got.name().to_string(), "/col/f/3");
        let fresh_only = cs
            .lookup_wire_prefix(&Name::from_uri("/col").to_wire_value(), true, t(0))
            .expect("fresh hit further along the range");
        assert_eq!(fresh_only.name().to_string(), "/col/f/5");
    }

    #[test]
    fn prefix_hit() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/col/f/3"), t(0));
        assert!(cs.lookup_prefix(&Name::from_uri("/col")).is_some());
        assert!(cs.lookup_prefix(&Name::from_uri("/col/f")).is_some());
        assert!(cs.lookup_prefix(&Name::from_uri("/col/g")).is_none());
        assert!(cs.lookup_prefix(&Name::from_uri("/other")).is_none());
    }

    #[test]
    fn prefix_does_not_match_sibling() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/cole/f/0"), t(0));
        // "/col" is a string prefix of "/cole" but not a name prefix.
        assert!(cs.lookup_prefix(&Name::from_uri("/col")).is_none());
    }

    #[test]
    fn exact_name_prefix_query_finds_itself() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/col"), t(0));
        assert!(cs.lookup_prefix(&Name::from_uri("/col")).is_some());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/a"), t(0));
        cs.insert(data("/b"), t(1));
        cs.insert(data("/c"), t(2));
        assert_eq!(cs.len(), 2);
        assert!(
            cs.lookup_exact(&Name::from_uri("/a")).is_none(),
            "oldest evicted"
        );
        assert!(cs.lookup_exact(&Name::from_uri("/b")).is_some());
        assert!(cs.lookup_exact(&Name::from_uri("/c")).is_some());
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/a"), t(0));
        cs.insert(data("/a"), t(1));
        cs.insert(data("/b"), t(2));
        assert_eq!(cs.len(), 2);
        assert!(cs.lookup_exact(&Name::from_uri("/a")).is_some());
    }

    #[test]
    fn must_be_fresh_rejects_nonfresh_data() {
        let mut cs = ContentStore::new(10);
        // No freshness period: never satisfies MustBeFresh.
        cs.insert(data("/d/x"), t(0));
        assert!(cs
            .lookup(&Name::from_uri("/d/x"), false, true, t(0))
            .is_none());
        assert!(cs
            .lookup(&Name::from_uri("/d/x"), false, false, t(0))
            .is_some());
    }

    #[test]
    fn freshness_expires_over_time() {
        let mut cs = ContentStore::new(10);
        cs.insert(fresh_data("/d/x", 1_000), t(10));
        assert!(cs
            .lookup(&Name::from_uri("/d/x"), false, true, t(10))
            .is_some());
        assert!(cs
            .lookup(&Name::from_uri("/d/x"), false, true, t(11))
            .is_some());
        assert!(cs
            .lookup(&Name::from_uri("/d/x"), false, true, t(12))
            .is_none());
        // Still served to freshness-agnostic Interests.
        assert!(cs
            .lookup(&Name::from_uri("/d/x"), false, false, t(12))
            .is_some());
    }

    #[test]
    fn reinsert_restarts_freshness_clock() {
        let mut cs = ContentStore::new(10);
        cs.insert(fresh_data("/d/x", 1_000), t(0));
        assert!(cs
            .lookup(&Name::from_uri("/d/x"), false, true, t(5))
            .is_none());
        cs.insert(fresh_data("/d/x", 1_000), t(5));
        assert!(cs
            .lookup(&Name::from_uri("/d/x"), false, true, t(5))
            .is_some());
    }

    #[test]
    fn prefix_lookup_skips_stale_finds_fresh() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/p/a"), t(0)); // stale forever
        cs.insert(fresh_data("/p/b", 10_000), t(0));
        let got = cs
            .lookup(&Name::from_uri("/p"), true, true, t(1))
            .expect("fresh entry further in the range");
        assert_eq!(got.name().to_string(), "/p/b");
    }

    #[test]
    fn lookup_respects_can_be_prefix_flag() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/col/f/0"), t(0));
        assert!(cs
            .lookup(&Name::from_uri("/col"), true, false, t(0))
            .is_some());
        assert!(cs
            .lookup(&Name::from_uri("/col"), false, false, t(0))
            .is_none());
    }

    #[test]
    fn state_bytes_grow_and_shrink() {
        let mut cs = ContentStore::new(1);
        assert_eq!(cs.state_bytes(), 0);
        cs.insert(data("/a"), t(0));
        let b1 = cs.state_bytes();
        assert!(b1 > 0);
        cs.insert(data("/b"), t(1)); // evicts /a
        assert!(cs.state_bytes() > 0);
        cs.clear();
        assert_eq!(cs.state_bytes(), 0);
    }
}
