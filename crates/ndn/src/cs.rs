//! The Content Store: an in-network cache of Data packets.
//!
//! Pure forwarders in DAPES "store data transmissions they overhear in their
//! CS, thus satisfying received requests with cached data" (paper §V-A); the
//! CS is also what lets a repo or any intermediate node answer Interests for
//! popular collection packets without reaching the producer.
//!
//! The store implements NDN freshness semantics: a Data packet is *fresh*
//! until its FreshnessPeriod elapses after insertion, and Interests carrying
//! MustBeFresh are only satisfied by fresh entries. Signalling data
//! (discovery replies, bitmaps) relies on this to avoid being answered from
//! stale caches forever; immutable collection packets carry no freshness
//! and are served from cache indefinitely.

use crate::arena::{Arena, ArenaRef};
use crate::hash::FxBuildHasher;
use crate::name::Name;
use crate::packet::Data;
use dapes_netsim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Bound;
use std::sync::Arc;

#[derive(Clone, Debug)]
struct CsEntry {
    data: Data,
    inserted: SimTime,
    /// The name's canonical wire-value key, shared with the wire index so
    /// eviction never re-encodes the name.
    wire_key: Arc<[u8]>,
}

impl CsEntry {
    fn is_fresh(&self, now: SimTime) -> bool {
        self.data.freshness_ms() > 0
            && now.since(self.inserted) <= SimDuration::from_millis(self.data.freshness_ms())
    }
}

/// The two table generations a Content Store can run on. Behaviour is
/// identical; only the cost model differs, which is exactly what the
/// scheduler benchmark's eager-vs-lazy axis prices.
#[derive(Clone, Debug)]
enum Tables {
    /// Current generation: every cached entry lives in the slab arena
    /// exactly once; both wire indexes and the FIFO hold only `Copy`
    /// handles, so refresh and eviction touch one slab slot instead of
    /// cloning `Data`/`Name` per index.
    Wire {
        arena: Arena<CsEntry>,
        /// Hash index keyed by [`Name::to_wire_value`]: the one-probe
        /// exact lookup every overheard non-prefix Interest pays, from
        /// borrowed name bytes or from a `Name` encoded once by the
        /// caller.
        exact: HashMap<Arc<[u8]>, ArenaRef, FxBuildHasher>,
        /// *Ordered* wire index over the same keys. Because
        /// byte-lexicographic order of canonical wire values equals NDN
        /// canonical `Name` order, and a name's wire value byte-extends
        /// all of its prefixes', one ordered range walk resolves a
        /// CanBePrefix Interest with the same first match a `Name`-keyed
        /// walk returns. No `Name` is built either way.
        by_wire: BTreeMap<Arc<[u8]>, ArenaRef>,
        fifo: VecDeque<ArenaRef>,
    },
    /// Pre-arena generation, kept as a benchmarkable cost model of the
    /// old control plane: a `Name`-keyed ordered map owning the entries
    /// plus a wire mirror holding a full clone of each — every insert
    /// pays two tree searches and an entry clone, every `Name` lookup a
    /// component-wise tree walk.
    Legacy {
        entries: BTreeMap<Name, CsEntry>,
        by_wire: BTreeMap<Arc<[u8]>, CsEntry>,
        fifo: VecDeque<Name>,
    },
}

/// A capacity-bounded Data cache with FIFO eviction, prefix lookup and
/// freshness semantics.
///
/// [`ContentStore::legacy`] runs on the previous table generation
/// (`Name`-keyed maps with cloned entries), observable-behaviour-identical
/// but with the old cost model; the scheduler benchmark's eager modes use
/// it so the baseline keeps pricing the control plane the wire-arena
/// tables replaced.
///
/// # Examples
///
/// ```
/// use dapes_ndn::cs::ContentStore;
/// use dapes_ndn::packet::Data;
/// use dapes_ndn::name::Name;
/// use dapes_netsim::time::SimTime;
///
/// let mut cs = ContentStore::new(2);
/// let t = SimTime::ZERO;
/// cs.insert(Data::new(Name::from_uri("/col/f/0"), vec![0]), t);
/// assert!(cs.lookup(&Name::from_uri("/col/f/0"), false, false, t).is_some());
/// assert!(cs.lookup(&Name::from_uri("/col"), true, false, t).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct ContentStore {
    tables: Tables,
    capacity: usize,
    bytes: usize,
}

impl ContentStore {
    /// Creates a store holding at most `capacity` packets on the
    /// wire-arena tables. A capacity of 0 caches nothing.
    pub fn new(capacity: usize) -> Self {
        ContentStore {
            tables: Tables::Wire {
                arena: Arena::new(),
                exact: HashMap::default(),
                by_wire: BTreeMap::new(),
                fifo: VecDeque::new(),
            },
            capacity,
            bytes: 0,
        }
    }

    /// Creates a store on the legacy (pre-arena) table generation.
    pub fn legacy(capacity: usize) -> Self {
        ContentStore {
            tables: Tables::Legacy {
                entries: BTreeMap::new(),
                by_wire: BTreeMap::new(),
                fifo: VecDeque::new(),
            },
            capacity,
            bytes: 0,
        }
    }

    /// Number of cached packets.
    pub fn len(&self) -> usize {
        match &self.tables {
            Tables::Wire { exact, .. } => exact.len(),
            Tables::Legacy { entries, .. } => entries.len(),
        }
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of cached state (Table I memory proxy), including
    /// the exact-match wire index's key bytes and per-entry overhead (its
    /// `Data` clones share the cached packets' buffers, so only the
    /// bookkeeping is counted).
    pub fn state_bytes(&self) -> usize {
        let index_bytes = match &self.tables {
            Tables::Wire { by_wire, .. } => by_wire.keys().map(|k| k.len() + 48).sum::<usize>(),
            Tables::Legacy { by_wire, .. } => by_wire.keys().map(|k| k.len() + 48).sum::<usize>(),
        };
        self.bytes + index_bytes
    }

    /// Live entries in the slab arena (mirrors [`ContentStore::len`];
    /// exported as the `cs_arena_live` stat). Zero on the legacy tables,
    /// which never touch the arena.
    pub fn arena_live(&self) -> usize {
        match &self.tables {
            Tables::Wire { arena, .. } => arena.live(),
            Tables::Legacy { .. } => 0,
        }
    }

    /// Arena slots ever allocated — bounded by peak cache occupancy, not
    /// by insert volume. Zero on the legacy tables.
    pub fn arena_allocated(&self) -> usize {
        match &self.tables {
            Tables::Wire { arena, .. } => arena.allocated(),
            Tables::Legacy { .. } => 0,
        }
    }

    /// Inserts a Data packet, evicting the oldest entry when full.
    /// Re-inserting an existing name refreshes the stored packet (and its
    /// freshness clock) in place without consuming extra capacity. A
    /// zero-capacity store caches nothing — the entry never enters the
    /// tables, so a refresh can't resurrect it either (the old post-insert
    /// eviction loop transiently held one entry at capacity 0).
    pub fn insert(&mut self, data: Data, now: SimTime) {
        if self.capacity == 0 {
            return;
        }
        let size = data.content().len() + data.name().state_bytes() + 64;
        match &mut self.tables {
            Tables::Wire {
                arena,
                exact,
                by_wire,
                fifo,
            } => {
                // Encode the name once; on a miss, entry and both wire
                // indexes share the key.
                let wire_key: Arc<[u8]> = data.name().to_wire_value().into();
                if let Some(&handle) = exact.get(&*wire_key) {
                    // Refresh in place: indexes and FIFO position are
                    // untouched.
                    let entry = arena.get_mut(handle).expect("indexed handles are live");
                    let old_size =
                        entry.data.content().len() + entry.data.name().state_bytes() + 64;
                    entry.data = data;
                    entry.inserted = now;
                    self.bytes = self.bytes.saturating_sub(old_size) + size;
                    return;
                }
                let handle = arena.insert(CsEntry {
                    data,
                    inserted: now,
                    wire_key: wire_key.clone(),
                });
                exact.insert(wire_key.clone(), handle);
                by_wire.insert(wire_key, handle);
                fifo.push_back(handle);
                self.bytes += size;
                while exact.len() > self.capacity {
                    let Some(victim) = fifo.pop_front() else {
                        break;
                    };
                    let Some(old) = arena.remove(victim) else {
                        continue;
                    };
                    exact.remove(&*old.wire_key);
                    by_wire.remove(&*old.wire_key);
                    self.bytes = self.bytes.saturating_sub(
                        old.data.content().len() + old.data.name().state_bytes() + 64,
                    );
                }
            }
            Tables::Legacy {
                entries,
                by_wire,
                fifo,
            } => {
                let name = data.name().clone();
                let wire_key: Arc<[u8]> = name.to_wire_value().into();
                let entry = CsEntry {
                    data,
                    inserted: now,
                    wire_key: wire_key.clone(),
                };
                by_wire.insert(wire_key, entry.clone());
                if let Some(old) = entries.insert(name.clone(), entry) {
                    let old_size = old.data.content().len() + name.state_bytes() + 64;
                    self.bytes = self.bytes.saturating_sub(old_size) + size;
                    return;
                }
                self.bytes += size;
                fifo.push_back(name);
                while entries.len() > self.capacity {
                    let Some(victim) = fifo.pop_front() else {
                        break;
                    };
                    if let Some(old) = entries.remove(&victim) {
                        by_wire.remove(&*old.wire_key);
                        self.bytes = self
                            .bytes
                            .saturating_sub(old.data.content().len() + victim.state_bytes() + 64);
                    }
                }
            }
        }
    }

    /// Looks up a packet for an Interest with the given semantics:
    /// `can_be_prefix` also matches names extending `name`;
    /// `must_be_fresh` only matches entries still within their
    /// FreshnessPeriod.
    pub fn lookup(
        &self,
        name: &Name,
        can_be_prefix: bool,
        must_be_fresh: bool,
        now: SimTime,
    ) -> Option<&Data> {
        match &self.tables {
            Tables::Wire { .. } => {
                let wire = name.to_wire_value();
                if can_be_prefix {
                    self.lookup_wire_prefix(&wire, must_be_fresh, now)
                } else {
                    self.lookup_wire_exact(&wire, must_be_fresh, now)
                }
            }
            Tables::Legacy { entries, .. } => {
                if can_be_prefix {
                    entries
                        .range(name.clone()..)
                        .take_while(|(n, _)| name.is_prefix_of(n))
                        .find(|(_, e)| !must_be_fresh || e.is_fresh(now))
                        .map(|(_, e)| &e.data)
                } else {
                    entries
                        .get(name)
                        .filter(|e| !must_be_fresh || e.is_fresh(now))
                        .map(|e| &e.data)
                }
            }
        }
    }

    /// Exact-name lookup ignoring freshness.
    pub fn lookup_exact(&self, name: &Name) -> Option<&Data> {
        match &self.tables {
            Tables::Wire { arena, exact, .. } => exact
                .get(name.to_wire_value().as_slice())
                .map(|&h| &arena.get(h).expect("indexed handles are live").data),
            Tables::Legacy { entries, .. } => entries.get(name).map(|e| &e.data),
        }
    }

    /// Exact-name lookup against a peeked frame's borrowed name bytes, with
    /// the same freshness semantics as [`ContentStore::lookup`] for a
    /// non-CanBePrefix Interest — one hash probe, no `Name` construction.
    pub fn lookup_wire_exact(
        &self,
        name_wire: &[u8],
        must_be_fresh: bool,
        now: SimTime,
    ) -> Option<&Data> {
        match &self.tables {
            Tables::Wire { arena, exact, .. } => exact
                .get(name_wire)
                .map(|&h| arena.get(h).expect("indexed handles are live"))
                .filter(|e| !must_be_fresh || e.is_fresh(now))
                .map(|e| &e.data),
            Tables::Legacy { by_wire, .. } => by_wire
                .get(name_wire)
                .filter(|e| !must_be_fresh || e.is_fresh(now))
                .map(|e| &e.data),
        }
    }

    /// Prefix lookup against a peeked frame's borrowed name bytes, with the
    /// same semantics — and, crucially, the same iteration order and
    /// therefore the same first match — as [`ContentStore::lookup`] with
    /// `can_be_prefix`. One ordered range walk, no `Name` construction.
    ///
    /// The caller must have validated that `name_wire` is a *complete* name
    /// TLV region (e.g. via [`crate::name::wire_component_boundaries`]): a
    /// region truncated mid-component could otherwise byte-prefix-match a
    /// cached name that is not a semantic extension of it.
    pub fn lookup_wire_prefix(
        &self,
        name_wire: &[u8],
        must_be_fresh: bool,
        now: SimTime,
    ) -> Option<&Data> {
        match &self.tables {
            Tables::Wire { arena, by_wire, .. } => by_wire
                .range::<[u8], _>((Bound::Included(name_wire), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(name_wire))
                .map(|(_, &h)| arena.get(h).expect("indexed handles are live"))
                .find(|e| !must_be_fresh || e.is_fresh(now))
                .map(|e| &e.data),
            Tables::Legacy { by_wire, .. } => by_wire
                .range::<[u8], _>((Bound::Included(name_wire), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(name_wire))
                .find(|(_, e)| !must_be_fresh || e.is_fresh(now))
                .map(|(_, e)| &e.data),
        }
    }

    /// Prefix lookup ignoring freshness.
    pub fn lookup_prefix(&self, prefix: &Name) -> Option<&Data> {
        self.lookup(prefix, true, false, SimTime::ZERO)
    }

    /// Removes everything (used when resetting a node).
    pub fn clear(&mut self) {
        match &mut self.tables {
            Tables::Wire {
                arena,
                exact,
                by_wire,
                fifo,
            } => {
                *arena = Arena::new();
                exact.clear();
                by_wire.clear();
                fifo.clear();
            }
            Tables::Legacy {
                entries,
                by_wire,
                fifo,
            } => {
                entries.clear();
                by_wire.clear();
                fifo.clear();
            }
        }
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(uri: &str) -> Data {
        Data::new(Name::from_uri(uri), vec![0; 16])
    }

    fn fresh_data(uri: &str, freshness_ms: u64) -> Data {
        Data::new(Name::from_uri(uri), vec![0; 16]).with_freshness_ms(freshness_ms)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Both table generations, so every behavioural test runs on each.
    fn both(capacity: usize) -> [ContentStore; 2] {
        [ContentStore::new(capacity), ContentStore::legacy(capacity)]
    }

    #[test]
    fn exact_hit_and_miss() {
        for mut cs in both(10) {
            cs.insert(data("/col/f/0"), t(0));
            assert!(cs.lookup_exact(&Name::from_uri("/col/f/0")).is_some());
            assert!(cs.lookup_exact(&Name::from_uri("/col/f/1")).is_none());
        }
    }

    #[test]
    fn wire_exact_lookup_mirrors_name_lookup() {
        for mut cs in both(2) {
            cs.insert(fresh_data("/col/f/0", 1_000), t(0));
            let key = Name::from_uri("/col/f/0").to_wire_value();
            assert_eq!(
                cs.lookup_wire_exact(&key, false, t(0)),
                cs.lookup(&Name::from_uri("/col/f/0"), false, false, t(0)),
            );
            // Freshness semantics match too.
            assert!(cs.lookup_wire_exact(&key, true, t(0)).is_some());
            assert!(cs.lookup_wire_exact(&key, true, t(5)).is_none());
            assert!(cs.lookup_wire_exact(&key, false, t(5)).is_some());
            // Eviction and clear keep the index in sync.
            cs.insert(data("/a"), t(1));
            cs.insert(data("/b"), t(2)); // evicts /col/f/0
            assert!(cs.lookup_wire_exact(&key, false, t(2)).is_none());
            let b_key = Name::from_uri("/b").to_wire_value();
            assert!(cs.lookup_wire_exact(&b_key, false, t(2)).is_some());
            cs.clear();
            assert!(cs.lookup_wire_exact(&b_key, false, t(2)).is_none());
        }
    }

    #[test]
    fn wire_prefix_lookup_mirrors_name_lookup() {
        for mut cs in both(10) {
            cs.insert(data("/col/f/3"), t(0));
            cs.insert(fresh_data("/col/f/5", 1_000), t(0));
            cs.insert(data("/cole/x"), t(0));
            for (q, fresh) in [
                ("/col", false),
                ("/col", true),
                ("/col/f", false),
                ("/col/f/3", false),
                ("/col/g", false),
                ("/cole", false),
                ("/other", false),
                ("/", false),
            ] {
                let name = Name::from_uri(q);
                assert_eq!(
                    cs.lookup_wire_prefix(&name.to_wire_value(), fresh, t(0)),
                    cs.lookup(&name, true, fresh, t(0)),
                    "query {q} fresh={fresh}"
                );
            }
            // The ordered walk returns the same *first* match as the Name
            // walk, not just any match: /col/f/3 (stale-forever) precedes
            // /col/f/5.
            let got = cs
                .lookup_wire_prefix(&Name::from_uri("/col").to_wire_value(), false, t(0))
                .expect("hit");
            assert_eq!(got.name().to_string(), "/col/f/3");
            let fresh_only = cs
                .lookup_wire_prefix(&Name::from_uri("/col").to_wire_value(), true, t(0))
                .expect("fresh hit further along the range");
            assert_eq!(fresh_only.name().to_string(), "/col/f/5");
        }
    }

    #[test]
    fn prefix_hit() {
        for mut cs in both(10) {
            cs.insert(data("/col/f/3"), t(0));
            assert!(cs.lookup_prefix(&Name::from_uri("/col")).is_some());
            assert!(cs.lookup_prefix(&Name::from_uri("/col/f")).is_some());
            assert!(cs.lookup_prefix(&Name::from_uri("/col/g")).is_none());
            assert!(cs.lookup_prefix(&Name::from_uri("/other")).is_none());
        }
    }

    #[test]
    fn prefix_does_not_match_sibling() {
        for mut cs in both(10) {
            cs.insert(data("/cole/f/0"), t(0));
            // "/col" is a string prefix of "/cole" but not a name prefix.
            assert!(cs.lookup_prefix(&Name::from_uri("/col")).is_none());
        }
    }

    #[test]
    fn exact_name_prefix_query_finds_itself() {
        for mut cs in both(10) {
            cs.insert(data("/col"), t(0));
            assert!(cs.lookup_prefix(&Name::from_uri("/col")).is_some());
        }
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        for mut cs in both(2) {
            cs.insert(data("/a"), t(0));
            cs.insert(data("/b"), t(1));
            cs.insert(data("/c"), t(2));
            assert_eq!(cs.len(), 2);
            assert!(
                cs.lookup_exact(&Name::from_uri("/a")).is_none(),
                "oldest evicted"
            );
            assert!(cs.lookup_exact(&Name::from_uri("/b")).is_some());
            assert!(cs.lookup_exact(&Name::from_uri("/c")).is_some());
        }
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        for mut cs in both(2) {
            cs.insert(data("/a"), t(0));
            cs.insert(data("/a"), t(1));
            cs.insert(data("/b"), t(2));
            assert_eq!(cs.len(), 2);
            assert!(cs.lookup_exact(&Name::from_uri("/a")).is_some());
        }
    }

    #[test]
    fn must_be_fresh_rejects_nonfresh_data() {
        for mut cs in both(10) {
            // No freshness period: never satisfies MustBeFresh.
            cs.insert(data("/d/x"), t(0));
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(0))
                .is_none());
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, false, t(0))
                .is_some());
        }
    }

    #[test]
    fn freshness_expires_over_time() {
        for mut cs in both(10) {
            cs.insert(fresh_data("/d/x", 1_000), t(10));
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(10))
                .is_some());
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(11))
                .is_some());
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(12))
                .is_none());
            // Still served to freshness-agnostic Interests.
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, false, t(12))
                .is_some());
        }
    }

    #[test]
    fn reinsert_restarts_freshness_clock() {
        for mut cs in both(10) {
            cs.insert(fresh_data("/d/x", 1_000), t(0));
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(5))
                .is_none());
            cs.insert(fresh_data("/d/x", 1_000), t(5));
            assert!(cs
                .lookup(&Name::from_uri("/d/x"), false, true, t(5))
                .is_some());
        }
    }

    #[test]
    fn prefix_lookup_skips_stale_finds_fresh() {
        for mut cs in both(10) {
            cs.insert(data("/p/a"), t(0)); // stale forever
            cs.insert(fresh_data("/p/b", 10_000), t(0));
            let got = cs
                .lookup(&Name::from_uri("/p"), true, true, t(1))
                .expect("fresh entry further in the range");
            assert_eq!(got.name().to_string(), "/p/b");
        }
    }

    #[test]
    fn lookup_respects_can_be_prefix_flag() {
        for mut cs in both(10) {
            cs.insert(data("/col/f/0"), t(0));
            assert!(cs
                .lookup(&Name::from_uri("/col"), true, false, t(0))
                .is_some());
            assert!(cs
                .lookup(&Name::from_uri("/col"), false, false, t(0))
                .is_none());
        }
    }

    #[test]
    fn zero_capacity_store_caches_nothing() {
        // Regression: the old post-insert eviction loop transiently held
        // one entry at capacity 0, and a refreshing re-insert resurrected
        // it indefinitely.
        for mut cs in both(0) {
            cs.insert(data("/a"), t(0));
            assert!(cs.is_empty());
            assert_eq!(cs.state_bytes(), 0);
            cs.insert(data("/a"), t(1)); // would refresh if anything survived
            cs.insert(data("/a"), t(2));
            assert!(cs.is_empty(), "refresh must not resurrect an entry");
            assert!(cs.lookup_exact(&Name::from_uri("/a")).is_none());
            assert!(cs
                .lookup_wire_exact(&Name::from_uri("/a").to_wire_value(), false, t(2))
                .is_none());
            assert_eq!(cs.arena_live(), 0);
            assert_eq!(cs.arena_allocated(), 0, "nothing may enter the arena");
        }
    }

    #[test]
    fn eviction_churn_reuses_arena_slots_and_keeps_indexes_synced() {
        let mut cs = ContentStore::new(2);
        for round in 0..50u64 {
            cs.insert(data(&format!("/n/{round}")), t(round));
        }
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.arena_live(), 2);
        assert!(
            cs.arena_allocated() <= 3,
            "allocation must track capacity, not volume: {}",
            cs.arena_allocated()
        );
        // Only the two newest survive, in every index.
        for round in 0..48u64 {
            let name = Name::from_uri(&format!("/n/{round}"));
            assert!(cs.lookup_exact(&name).is_none());
            assert!(cs
                .lookup_wire_exact(&name.to_wire_value(), false, t(50))
                .is_none());
        }
        for round in 48..50u64 {
            let name = Name::from_uri(&format!("/n/{round}"));
            assert!(cs.lookup_exact(&name).is_some());
            assert!(cs
                .lookup_wire_exact(&name.to_wire_value(), false, t(50))
                .is_some());
        }
    }

    #[test]
    fn state_bytes_grow_and_shrink() {
        for mut cs in both(1) {
            assert_eq!(cs.state_bytes(), 0);
            cs.insert(data("/a"), t(0));
            let b1 = cs.state_bytes();
            assert!(b1 > 0);
            cs.insert(data("/b"), t(1)); // evicts /a
            assert!(cs.state_bytes() > 0);
            cs.clear();
            assert_eq!(cs.state_bytes(), 0);
        }
    }
}
