//! Scenario builders: collection, peer and world factories with seeded
//! RNG placement, mobility presets and loss schedules.

use dapes_core::prelude::*;
use dapes_crypto::signing::TrustAnchor;
use dapes_netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The trust anchor every harness peer shares unless a test overrides it
/// (e.g. to model a forged producer).
pub fn shared_anchor() -> TrustAnchor {
    TrustAnchor::from_seed(b"dapes-testutil")
}

/// A differently-seeded anchor for adversarial scenarios; signatures made
/// under it never verify against [`shared_anchor`].
pub fn rogue_anchor() -> TrustAnchor {
    TrustAnchor::from_seed(b"dapes-testutil-rogue")
}

/// Parameters of the collection a scenario shares.
#[derive(Clone, Debug)]
pub struct CollectionParams {
    /// Collection name URI.
    pub name: String,
    /// Number of files.
    pub files: usize,
    /// Bytes per file.
    pub file_size: usize,
    /// Packet payload size.
    pub packet_size: usize,
    /// Metadata encoding.
    pub format: MetadataFormat,
    /// Producer identity the metadata is signed under.
    pub producer: String,
}

impl Default for CollectionParams {
    fn default() -> Self {
        CollectionParams {
            name: "/damaged-bridge-1533783192".into(),
            files: 1,
            file_size: 4096,
            packet_size: 1024,
            format: MetadataFormat::MerkleRoots,
            producer: "resident-a".into(),
        }
    }
}

impl CollectionParams {
    /// A collection of `files` files of `file_size` bytes each.
    pub fn sized(files: usize, file_size: usize) -> Self {
        CollectionParams {
            files,
            file_size,
            ..CollectionParams::default()
        }
    }

    /// Builds the shared collection.
    pub fn build(&self) -> Arc<Collection> {
        Arc::new(Collection::build(CollectionSpec {
            name: dapes_ndn::name::Name::from_uri(&self.name),
            files: (0..self.files)
                .map(|i| FileSpec::new(format!("file-{i}"), self.file_size))
                .collect(),
            packet_size: self.packet_size,
            format: self.format,
            producer: self.producer.clone(),
        }))
    }

    /// Content packets in the collection (excluding metadata segments).
    pub fn total_packets(&self) -> usize {
        self.files * self.file_size.div_ceil(self.packet_size)
    }
}

/// How a peer moves, as a reusable preset.
#[derive(Clone, Debug)]
pub enum MobilityPreset {
    /// Never moves.
    Fixed(Point),
    /// Random-direction walk starting at the given point (2–10 m/s,
    /// re-drawn at field boundaries).
    RandomWalk(Point),
    /// Scripted waypoints `(arrival_time, position)`.
    Waypoints(Vec<(SimTime, Point)>),
    /// A data ferry: dwell at `from` until `depart`, then travel so it
    /// arrives at `to` after `travel`. Models the paper's Fig. 8a carrier
    /// crossing a network partition.
    Ferry {
        /// Starting position (typically inside the producer's segment).
        from: Point,
        /// Final position (typically inside the disconnected segment).
        to: Point,
        /// Time spent at `from` before leaving.
        depart: SimTime,
        /// Travel duration from `from` to `to`.
        travel: SimDuration,
    },
}

impl MobilityPreset {
    /// A fixed position shorthand.
    pub fn at(x: f64, y: f64) -> Self {
        MobilityPreset::Fixed(Point::new(x, y))
    }

    /// Instantiates the netsim mobility model.
    pub fn into_mobility(self) -> Box<dyn Mobility> {
        match self {
            MobilityPreset::Fixed(p) => Box::new(Stationary::new(p)),
            MobilityPreset::RandomWalk(p) => Box::new(RandomDirection::new(p)),
            MobilityPreset::Waypoints(w) => Box::new(ScriptedMobility::new(w)),
            MobilityPreset::Ferry {
                from,
                to,
                depart,
                travel,
            } => Box::new(ScriptedMobility::new(vec![
                (SimTime::ZERO, from),
                (depart, from),
                (depart + travel, to),
            ])),
        }
    }
}

/// Role-relative fault recipes, resolved to concrete node ids at build
/// time — the same profile list works across topologies whose node counts
/// differ. Resolved profiles are appended to the scenario's [`FaultPlan`].
#[derive(Clone, Debug)]
pub enum FaultProfile {
    /// Crash the `index`-th downloader at `crash` and restart it at
    /// `restart`; the fresh stack salvages the wreck's held segments and
    /// resumes the transfer.
    CrashRestartDownloader {
        /// Position in the scenario's downloader list.
        index: usize,
        /// Crash instant.
        crash: SimTime,
        /// Restart instant (must be after `crash`).
        restart: SimTime,
    },
    /// Remove the `index`-th downloader permanently at `at`.
    LeaveDownloader {
        /// Position in the scenario's downloader list.
        index: usize,
        /// Departure instant.
        at: SimTime,
    },
    /// Sever every link between the `index`-th downloader and the rest of
    /// the network from `cut` to `heal` — a clean partition-and-heal with
    /// no mobility involved.
    IsolateDownloader {
        /// Position in the scenario's downloader list.
        index: usize,
        /// Cut instant.
        cut: SimTime,
        /// Heal instant (must be at or after `cut`).
        heal: SimTime,
    },
}

impl FaultProfile {
    /// The profile's last scheduled instant, for deadline extension.
    pub fn last_event(&self) -> SimTime {
        match *self {
            FaultProfile::CrashRestartDownloader { restart, .. } => restart,
            FaultProfile::LeaveDownloader { at, .. } => at,
            FaultProfile::IsolateDownloader { heal, .. } => heal,
        }
    }
}

/// What a peer does in the scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerRole {
    /// Seeds the collection, downloads nothing.
    Producer,
    /// Wants every discovered collection.
    Downloader,
    /// A DAPES intermediate node: understands the protocol, wants nothing.
    Relay,
    /// Forwards blindly on the NDN plane without DAPES semantics.
    PureForwarder,
}

#[derive(Debug)]
struct PeerSpec {
    role: PeerRole,
    mobility: MobilityPreset,
    cfg: Option<DapesConfig>,
    anchor: Option<TrustAnchor>,
}

#[derive(Debug)]
struct AdversarySpec {
    kind: AdversaryKind,
    mobility: MobilityPreset,
    replay_delay: Option<SimDuration>,
    period: Option<SimDuration>,
}

/// Builder for a deterministic DAPES scenario. Every knob defaults to the
/// values the pre-existing test suites used, so a two-peer test is one
/// producer call, one downloader call and `build()`.
#[derive(Debug)]
pub struct ScenarioBuilder {
    seed: u64,
    range: f64,
    field: (f64, f64),
    loss: f64,
    loss_schedule: Vec<(SimTime, f64)>,
    collection: CollectionParams,
    cfg: DapesConfig,
    anchor: TrustAnchor,
    peers: Vec<PeerSpec>,
    adversaries: Vec<AdversarySpec>,
    exec: ExecProfile,
    fault_plan: FaultPlan,
    fault_profiles: Vec<FaultProfile>,
}

impl ScenarioBuilder {
    /// Starts a scenario with the given world seed. Defaults: 60 m range,
    /// 300 × 300 m field, zero loss, one-file/4 KiB collection, default
    /// [`DapesConfig`], the [`shared_anchor`].
    pub fn new(seed: u64) -> Self {
        ScenarioBuilder {
            seed,
            range: 60.0,
            field: (300.0, 300.0),
            loss: 0.0,
            loss_schedule: Vec::new(),
            collection: CollectionParams::default(),
            cfg: DapesConfig::default(),
            anchor: shared_anchor(),
            peers: Vec::new(),
            adversaries: Vec::new(),
            exec: ExecProfile::default(),
            fault_plan: FaultPlan::new(),
            fault_profiles: Vec::new(),
        }
    }

    /// Attaches an explicit node-id [`FaultPlan`] (crash/restart/join/
    /// leave/partition script) to the built world. Node ids are assigned in
    /// peer-insertion order, so a plan can be written against the builder
    /// calls. Combines with [`ScenarioBuilder::faults`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Adds role-relative [`FaultProfile`]s, resolved against the actual
    /// downloader list at build time and appended to the fault plan.
    pub fn faults<I: IntoIterator<Item = FaultProfile>>(mut self, profiles: I) -> Self {
        self.fault_profiles.extend(profiles);
        self
    }

    /// Radio range in metres.
    pub fn range(mut self, range: f64) -> Self {
        self.range = range;
        self
    }

    /// The execution-strategy profile for the run: queue, delivery,
    /// delivery-event granularity, decode regime and shard count in one
    /// value. It configures the world *and* becomes the `exec` of the
    /// default [`DapesConfig`] (peers added via
    /// [`peer_with_config`](Self::peer_with_config) keep their own —
    /// the escape hatch decode-equivalence tests rely on).
    pub fn exec(mut self, exec: ExecProfile) -> Self {
        self.exec = exec;
        self
    }

    /// Forwarding shim for the pre-[`ExecProfile`] knob.
    #[deprecated(since = "0.10.0", note = "use `exec` (ExecProfile::with_delivery)")]
    pub fn delivery(mut self, delivery: DeliveryMode) -> Self {
        self.exec.delivery = delivery;
        self
    }

    /// Forwarding shim for the pre-[`ExecProfile`] knob.
    #[deprecated(since = "0.10.0", note = "use `exec` (ExecProfile::with_queue)")]
    pub fn queue(mut self, queue: QueueMode) -> Self {
        self.exec.queue = queue;
        self
    }

    /// Forwarding shim for the pre-[`ExecProfile`] knob.
    #[deprecated(
        since = "0.10.0",
        note = "use `exec` (ExecProfile::with_delivery_events)"
    )]
    pub fn delivery_events(mut self, delivery_events: DeliveryEvents) -> Self {
        self.exec.delivery_events = delivery_events;
        self
    }

    /// Field dimensions in metres.
    pub fn field(mut self, w: f64, h: f64) -> Self {
        self.field = (w, h);
        self
    }

    /// Constant Bernoulli frame-loss rate.
    pub fn loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Time-varying loss: each `(time, rate)` entry switches the loss rate
    /// at that instant. Entries must be in ascending time order.
    pub fn loss_schedule<I: IntoIterator<Item = (SimTime, f64)>>(mut self, schedule: I) -> Self {
        self.loss_schedule = schedule.into_iter().collect();
        assert!(
            self.loss_schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "loss schedule must be time-ordered"
        );
        self
    }

    /// Shares a collection of `files` files of `file_size` bytes.
    pub fn collection(mut self, files: usize, file_size: usize) -> Self {
        self.collection.files = files;
        self.collection.file_size = file_size;
        self
    }

    /// Full control over the shared collection.
    pub fn collection_params(mut self, params: CollectionParams) -> Self {
        self.collection = params;
        self
    }

    /// DAPES configuration used by peers without a per-peer override.
    pub fn config(mut self, cfg: DapesConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Trust anchor shared by peers without a per-peer override.
    pub fn anchor(mut self, anchor: TrustAnchor) -> Self {
        self.anchor = anchor;
        self
    }

    /// Adds a peer with an explicit role and mobility.
    pub fn peer(mut self, role: PeerRole, mobility: MobilityPreset) -> Self {
        self.peers.push(PeerSpec {
            role,
            mobility,
            cfg: None,
            anchor: None,
        });
        self
    }

    /// Adds a peer whose [`DapesConfig`] differs from the scenario default.
    pub fn peer_with_config(
        mut self,
        role: PeerRole,
        mobility: MobilityPreset,
        cfg: DapesConfig,
    ) -> Self {
        self.peers.push(PeerSpec {
            role,
            mobility,
            cfg: Some(cfg),
            anchor: None,
        });
        self
    }

    /// Adds a peer signing/verifying under its own trust anchor (e.g. a
    /// forged producer).
    pub fn peer_with_anchor(
        mut self,
        role: PeerRole,
        mobility: MobilityPreset,
        anchor: TrustAnchor,
    ) -> Self {
        self.peers.push(PeerSpec {
            role,
            mobility,
            cfg: None,
            anchor: Some(anchor),
        });
        self
    }

    /// Stationary producer at `(x, y)`.
    pub fn producer_at(self, x: f64, y: f64) -> Self {
        self.peer(PeerRole::Producer, MobilityPreset::at(x, y))
    }

    /// Stationary downloader at `(x, y)`.
    pub fn downloader_at(self, x: f64, y: f64) -> Self {
        self.peer(PeerRole::Downloader, MobilityPreset::at(x, y))
    }

    /// Stationary DAPES relay at `(x, y)`.
    pub fn relay_at(self, x: f64, y: f64) -> Self {
        self.peer(PeerRole::Relay, MobilityPreset::at(x, y))
    }

    /// Stationary pure forwarder at `(x, y)`.
    pub fn pure_forwarder_at(self, x: f64, y: f64) -> Self {
        self.peer(PeerRole::PureForwarder, MobilityPreset::at(x, y))
    }

    /// Adds an attacker node running the given hostile behavior, keyed to
    /// the [`rogue_anchor`]. Adversaries are instantiated after every
    /// honest peer, so honest node ids are unchanged by their presence;
    /// the forger's victim is the scenario's first producer.
    pub fn adversary(mut self, kind: AdversaryKind, mobility: MobilityPreset) -> Self {
        self.adversaries.push(AdversarySpec {
            kind,
            mobility,
            replay_delay: None,
            period: None,
        });
        self
    }

    /// Stationary adversary at `(x, y)`.
    pub fn adversary_at(self, kind: AdversaryKind, x: f64, y: f64) -> Self {
        self.adversary(kind, MobilityPreset::at(x, y))
    }

    /// Adds an attacker with explicit timing: `period` for the periodic
    /// behaviors (flood, forge), `replay_delay` for the replayer's hold
    /// time (must exceed the honest peers' `replay_window_ms`).
    pub fn adversary_with_timing(
        mut self,
        kind: AdversaryKind,
        mobility: MobilityPreset,
        period: Option<SimDuration>,
        replay_delay: Option<SimDuration>,
    ) -> Self {
        self.adversaries.push(AdversarySpec {
            kind,
            mobility,
            replay_delay,
            period,
        });
        self
    }

    /// `n` random-walking downloaders placed by the scenario's seeded RNG.
    pub fn mobile_downloaders(mut self, n: usize) -> Self {
        for _ in 0..n {
            self.peers.push(PeerSpec {
                role: PeerRole::Downloader,
                mobility: MobilityPreset::RandomWalk(Point::new(0.0, 0.0)),
                cfg: None,
                anchor: None,
            });
        }
        self
    }

    /// `n` random-walking DAPES relays placed by the scenario's seeded RNG.
    pub fn mobile_relays(mut self, n: usize) -> Self {
        for _ in 0..n {
            self.peers.push(PeerSpec {
                role: PeerRole::Relay,
                mobility: MobilityPreset::RandomWalk(Point::new(0.0, 0.0)),
                cfg: None,
                anchor: None,
            });
        }
        self
    }

    /// `n` random-walking pure forwarders placed by the seeded RNG.
    pub fn mobile_pure_forwarders(mut self, n: usize) -> Self {
        for _ in 0..n {
            self.peers.push(PeerSpec {
                role: PeerRole::PureForwarder,
                mobility: MobilityPreset::RandomWalk(Point::new(0.0, 0.0)),
                cfg: None,
                anchor: None,
            });
        }
        self
    }

    /// The [`WorldConfig`] this builder produces (also used by
    /// [`build_sharded`](Self::build_sharded)).
    fn world_config(&self) -> WorldConfig {
        WorldConfig {
            seed: self.seed,
            range: self.range,
            field: self.field,
            phy: PhyConfig {
                loss_rate: self.loss,
                ..PhyConfig::default()
            },
            exec: self.exec,
        }
    }

    /// Instantiates the world, collection and peers. Node ids are assigned
    /// in insertion order; random-walk start positions come from a SplitMix
    /// of the scenario seed, so equal builders give bit-identical runs.
    ///
    /// # Panics
    ///
    /// Panics when the profile asks for more than one core — multi-core
    /// runs go through [`build_sharded`](Self::build_sharded), which has
    /// different (window-boundary) observability semantics.
    pub fn build(self) -> Scenario {
        assert_eq!(
            self.exec.cores, 1,
            "exec.cores > 1: use ScenarioBuilder::build_sharded()"
        );
        let mut world = World::new(self.world_config());
        let parts = self.populate(&mut world);
        Scenario {
            world,
            producers: parts.producers,
            downloaders: parts.downloaders,
            relays: parts.relays,
            forwarders: parts.forwarders,
            adversaries: parts.adversaries,
            collection: parts.collection,
            anchor: parts.anchor,
            loss_schedule: parts.loss_schedule,
            schedule_applied: 0,
        }
    }

    /// Instantiates the scenario on the sharded multi-core engine. With
    /// `exec.cores == 1` the run is bit-identical to [`build`](Self::build)
    /// (the sharded world delegates to a single sequential world); with
    /// more cores it is metric-equivalent within the tolerance documented
    /// on [`dapes_netsim::shard`].
    pub fn build_sharded(self) -> ShardedScenario {
        let mut world = ShardedWorld::new(self.world_config());
        let parts = self.populate(&mut world);
        ShardedScenario {
            world,
            producers: parts.producers,
            downloaders: parts.downloaders,
            relays: parts.relays,
            forwarders: parts.forwarders,
            adversaries: parts.adversaries,
            collection: parts.collection,
            anchor: parts.anchor,
            loss_schedule: parts.loss_schedule,
            schedule_applied: 0,
        }
    }

    /// Adds every peer, adversary, fault and restart recipe to `world`.
    fn populate<W: SimWorld>(self, world: &mut W) -> ScenarioParts {
        let collection = self.collection.build();
        let mut placement_rng = SmallRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);

        let mut producers = Vec::new();
        let mut downloaders = Vec::new();
        let mut relays = Vec::new();
        let mut forwarders = Vec::new();

        // The builder's profile is the single source of truth for the
        // run's execution strategy: it reaches peers through the default
        // config's `exec` (per-peer overrides keep their own).
        let default_cfg = {
            let mut c = self.cfg.clone();
            c.exec = self.exec;
            c
        };
        let honest = self.peers.len();
        let mut recipes: Vec<(PeerRole, DapesConfig, TrustAnchor)> = Vec::with_capacity(honest);
        for (i, spec) in self.peers.into_iter().enumerate() {
            let id = i as u32;
            let cfg = spec.cfg.unwrap_or_else(|| default_cfg.clone());
            let anchor = spec.anchor.unwrap_or_else(|| self.anchor.clone());
            recipes.push((spec.role, cfg.clone(), anchor.clone()));
            let mobility = match spec.mobility {
                // Random walkers get their start drawn here so placement is
                // a pure function of the scenario seed.
                MobilityPreset::RandomWalk(_) => {
                    let x = placement_rng.gen_range(0.0..self.field.0);
                    let y = placement_rng.gen_range(0.0..self.field.1);
                    MobilityPreset::RandomWalk(Point::new(x, y))
                }
                other => other,
            };
            let stack: Box<dyn NetStack> = match spec.role {
                PeerRole::Producer => {
                    let mut p = DapesPeer::new(id, cfg, anchor, WantPolicy::Nothing);
                    p.add_production(collection.clone());
                    Box::new(p)
                }
                PeerRole::Downloader => {
                    Box::new(DapesPeer::new(id, cfg, anchor, WantPolicy::Everything))
                }
                PeerRole::Relay => Box::new(DapesPeer::new(id, cfg, anchor, WantPolicy::Nothing)),
                PeerRole::PureForwarder => Box::new(DapesPeer::pure_forwarder(id, cfg, anchor)),
            };
            let node = world.add_node(mobility.into_mobility(), stack);
            match spec.role {
                PeerRole::Producer => producers.push(node),
                PeerRole::Downloader => downloaders.push(node),
                PeerRole::Relay => relays.push(node),
                PeerRole::PureForwarder => forwarders.push(node),
            }
        }

        // Attackers join after every honest peer, so honest node ids are
        // independent of the adversarial axis. The forger impersonates the
        // first producer (peer ids equal insertion order).
        let victim = producers.first().map_or(0, |n| n.0);
        let mut adversaries = Vec::new();
        for (j, spec) in self.adversaries.into_iter().enumerate() {
            let id = (honest + j) as u32;
            let mut adv = Adversary::new(id, spec.kind, victim, rogue_anchor());
            if let Some(p) = spec.period {
                adv = adv.with_period(p);
            }
            if let Some(d) = spec.replay_delay {
                adv = adv.with_replay_delay(d);
            }
            let mobility = match spec.mobility {
                MobilityPreset::RandomWalk(_) => {
                    let x = placement_rng.gen_range(0.0..self.field.0);
                    let y = placement_rng.gen_range(0.0..self.field.1);
                    MobilityPreset::RandomWalk(Point::new(x, y))
                }
                other => other,
            };
            adversaries.push(world.add_node(mobility.into_mobility(), Box::new(adv)));
        }

        // Resolve role-relative fault profiles now that node ids exist and
        // append them to the explicit plan.
        let mut plan = self.fault_plan;
        let all_nodes: Vec<NodeId> = (0..world.node_count() as u32).map(NodeId).collect();
        for profile in self.fault_profiles {
            match profile {
                FaultProfile::CrashRestartDownloader {
                    index,
                    crash,
                    restart,
                } => {
                    let node = downloaders[index];
                    plan = plan.crash_at(crash, node).restart_at(restart, node);
                }
                FaultProfile::LeaveDownloader { index, at } => {
                    plan = plan.leave_at(at, downloaders[index]);
                }
                FaultProfile::IsolateDownloader { index, cut, heal } => {
                    let node = downloaders[index];
                    let rest: Vec<NodeId> =
                        all_nodes.iter().copied().filter(|&n| n != node).collect();
                    plan = plan.partition(cut, heal, [node], rest);
                }
            }
        }

        // Restart recipes: a fresh stack per honest node id (same role,
        // config and anchor as the original), salvaging download state from
        // the wreck so a restarted downloader resumes instead of starting
        // over. Installed unconditionally — a plan set later on the world
        // still finds it.
        let factory_collection = collection.clone();
        world.set_stack_factory(Box::new(move |node, wreck| {
            let (role, cfg, anchor) = recipes
                .get(node.0 as usize)
                .cloned()
                .expect("fault plans may only restart honest peers");
            let id = node.0;
            let mut peer = match role {
                PeerRole::Producer => {
                    let mut p = DapesPeer::new(id, cfg, anchor, WantPolicy::Nothing);
                    p.add_production(factory_collection.clone());
                    p
                }
                PeerRole::Downloader => DapesPeer::new(id, cfg, anchor, WantPolicy::Everything),
                PeerRole::Relay => DapesPeer::new(id, cfg, anchor, WantPolicy::Nothing),
                PeerRole::PureForwarder => DapesPeer::pure_forwarder(id, cfg, anchor),
            };
            if let Some(old) = wreck.and_then(|w| w.as_any().downcast_ref::<DapesPeer>()) {
                peer.restore(old.salvage());
            }
            Box::new(peer)
        }));
        if !plan.is_empty() {
            world.set_fault_plan(plan);
        }

        ScenarioParts {
            producers,
            downloaders,
            relays,
            forwarders,
            adversaries,
            collection,
            anchor: self.anchor,
            loss_schedule: self.loss_schedule,
        }
    }
}

/// Everything [`ScenarioBuilder::populate`] adds around the world,
/// engine-agnostic.
struct ScenarioParts {
    producers: Vec<NodeId>,
    downloaders: Vec<NodeId>,
    relays: Vec<NodeId>,
    forwarders: Vec<NodeId>,
    adversaries: Vec<NodeId>,
    collection: Arc<Collection>,
    anchor: TrustAnchor,
    loss_schedule: Vec<(SimTime, f64)>,
}

/// The world operations scenario population needs, implemented by both
/// the sequential [`World`] and the sharded engine.
trait SimWorld {
    fn add_node(&mut self, mobility: Box<dyn Mobility>, stack: Box<dyn NetStack>) -> NodeId;
    fn node_count(&self) -> usize;
    fn set_stack_factory(&mut self, factory: StackFactory);
    fn set_fault_plan(&mut self, plan: FaultPlan);
}

impl SimWorld for World {
    fn add_node(&mut self, mobility: Box<dyn Mobility>, stack: Box<dyn NetStack>) -> NodeId {
        World::add_node(self, mobility, stack)
    }
    fn node_count(&self) -> usize {
        World::node_count(self)
    }
    fn set_stack_factory(&mut self, factory: StackFactory) {
        World::set_stack_factory(self, factory)
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        World::set_fault_plan(self, plan)
    }
}

impl SimWorld for ShardedWorld {
    fn add_node(&mut self, mobility: Box<dyn Mobility>, stack: Box<dyn NetStack>) -> NodeId {
        ShardedWorld::add_node(self, mobility, stack)
    }
    fn node_count(&self) -> usize {
        ShardedWorld::node_count(self)
    }
    fn set_stack_factory(&mut self, factory: StackFactory) {
        ShardedWorld::set_stack_factory(self, factory)
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        ShardedWorld::set_fault_plan(self, plan)
    }
}

/// A built scenario: the world plus the node ids by role.
pub struct Scenario {
    /// The simulator.
    pub world: World,
    /// Producer node ids, in insertion order.
    pub producers: Vec<NodeId>,
    /// Downloader node ids, in insertion order.
    pub downloaders: Vec<NodeId>,
    /// DAPES relay node ids.
    pub relays: Vec<NodeId>,
    /// Pure-forwarder node ids.
    pub forwarders: Vec<NodeId>,
    /// Adversary node ids (always after every honest peer).
    pub adversaries: Vec<NodeId>,
    /// The shared collection.
    pub collection: Arc<Collection>,
    /// The default trust anchor.
    pub anchor: TrustAnchor,
    loss_schedule: Vec<(SimTime, f64)>,
    schedule_applied: usize,
}

impl Scenario {
    /// The DAPES peer at `node`, if it is one.
    pub fn peer(&self, node: NodeId) -> Option<&DapesPeer> {
        self.world.stack::<DapesPeer>(node)
    }

    /// The adversary stack at `node`, if it is one.
    pub fn adversary(&self, node: NodeId) -> Option<&Adversary> {
        self.world.stack::<Adversary>(node)
    }

    /// Sums one honest-side defense counter over every DAPES peer.
    pub fn defense_total<F: Fn(&PeerStats) -> u64>(&self, pick: F) -> u64 {
        (0..self.world.node_count())
            .filter_map(|i| self.peer(NodeId(i as u32)))
            .map(|p| pick(p.stats()))
            .sum()
    }

    /// Whether `node` completed all wanted downloads.
    pub fn completed(&self, node: NodeId) -> bool {
        self.peer(node).is_some_and(|p| p.downloads_complete())
    }

    /// Whether every downloader completed.
    pub fn all_complete(&self) -> bool {
        self.downloaders.iter().all(|&d| self.completed(d))
    }

    /// Completion times of the downloaders, in insertion order.
    pub fn completion_times(&self) -> Vec<Option<SimTime>> {
        self.downloaders
            .iter()
            .map(|&d| self.peer(d).and_then(|p| p.completed_at()))
            .collect()
    }

    /// Runs until `deadline`, applying any loss schedule along the way.
    pub fn run_until(&mut self, deadline: SimTime) {
        // Equivalent to a predicate that never fires.
        self.run_until_cond(deadline, |_| false);
    }

    /// Runs until the predicate fires or `deadline`, applying the loss
    /// schedule at its switch points. Returns whether the predicate fired.
    pub fn run_until_cond<F: FnMut(&World) -> bool>(
        &mut self,
        deadline: SimTime,
        mut pred: F,
    ) -> bool {
        loop {
            let next_switch = self
                .loss_schedule
                .get(self.schedule_applied)
                .map(|&(t, _)| t);
            match next_switch {
                Some(t) if t <= deadline => {
                    if self.world.run_until_cond(t, &mut pred) {
                        return true;
                    }
                    let (_, rate) = self.loss_schedule[self.schedule_applied];
                    self.world.set_loss_rate(rate);
                    self.schedule_applied += 1;
                }
                _ => return self.world.run_until_cond(deadline, &mut pred),
            }
        }
    }

    /// Runs until every downloader finished or `deadline`. Returns whether
    /// all finished.
    pub fn run_until_complete(&mut self, deadline: SimTime) -> bool {
        let downloaders = self.downloaders.clone();
        self.run_until_cond(deadline, |w| {
            downloaders.iter().all(|&d| {
                w.stack::<DapesPeer>(d)
                    .is_some_and(|p| p.downloads_complete())
            })
        })
    }

    /// Runs until one specific node finished or `deadline`.
    pub fn run_until_node_complete(&mut self, node: NodeId, deadline: SimTime) -> bool {
        self.run_until_cond(deadline, |w| {
            w.stack::<DapesPeer>(node)
                .is_some_and(|p| p.downloads_complete())
        })
    }
}

/// A scenario running on the sharded multi-core engine. Mirrors
/// [`Scenario`], with one semantic difference: predicates (and loss
/// switches) are observed at synchronization-window boundaries, so
/// completion times quantize to the lookahead (~hundreds of
/// microseconds) instead of event instants.
pub struct ShardedScenario {
    /// The sharded simulator.
    pub world: ShardedWorld,
    /// Producer node ids, in insertion order.
    pub producers: Vec<NodeId>,
    /// Downloader node ids, in insertion order.
    pub downloaders: Vec<NodeId>,
    /// DAPES relay node ids.
    pub relays: Vec<NodeId>,
    /// Pure-forwarder node ids.
    pub forwarders: Vec<NodeId>,
    /// Adversary node ids (always after every honest peer).
    pub adversaries: Vec<NodeId>,
    /// The shared collection.
    pub collection: Arc<Collection>,
    /// The default trust anchor.
    pub anchor: TrustAnchor,
    loss_schedule: Vec<(SimTime, f64)>,
    schedule_applied: usize,
}

impl ShardedScenario {
    /// The DAPES peer at `node`, if it is one.
    pub fn peer(&self, node: NodeId) -> Option<&DapesPeer> {
        self.world.stack::<DapesPeer>(node)
    }

    /// Sums one honest-side defense counter over every DAPES peer.
    pub fn defense_total<F: Fn(&PeerStats) -> u64>(&self, pick: F) -> u64 {
        (0..self.world.node_count())
            .filter_map(|i| self.peer(NodeId(i as u32)))
            .map(|p| pick(p.stats()))
            .sum()
    }

    /// Whether `node` completed all wanted downloads.
    pub fn completed(&self, node: NodeId) -> bool {
        self.peer(node).is_some_and(|p| p.downloads_complete())
    }

    /// Whether every downloader completed.
    pub fn all_complete(&self) -> bool {
        self.downloaders.iter().all(|&d| self.completed(d))
    }

    /// Completion times of the downloaders, in insertion order.
    pub fn completion_times(&self) -> Vec<Option<SimTime>> {
        self.downloaders
            .iter()
            .map(|&d| self.peer(d).and_then(|p| p.completed_at()))
            .collect()
    }

    /// Runs until `deadline`, applying any loss schedule along the way.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_until_cond(deadline, |_| false);
    }

    /// Runs until the predicate fires or `deadline`, applying the loss
    /// schedule at its switch points (quantized to window boundaries).
    /// Returns whether the predicate fired.
    pub fn run_until_cond<F: FnMut(&ShardedWorld) -> bool>(
        &mut self,
        deadline: SimTime,
        mut pred: F,
    ) -> bool {
        loop {
            let next_switch = self
                .loss_schedule
                .get(self.schedule_applied)
                .map(|&(t, _)| t);
            match next_switch {
                Some(t) if t <= deadline => {
                    if self.world.run_until_cond(t, &mut pred) {
                        return true;
                    }
                    let (_, rate) = self.loss_schedule[self.schedule_applied];
                    self.world.set_loss_rate(rate);
                    self.schedule_applied += 1;
                }
                _ => return self.world.run_until_cond(deadline, &mut pred),
            }
        }
    }

    /// Runs until every downloader finished or `deadline`. Returns whether
    /// all finished.
    pub fn run_until_complete(&mut self, deadline: SimTime) -> bool {
        let downloaders = self.downloaders.clone();
        self.run_until_cond(deadline, |w| {
            downloaders.iter().all(|&d| {
                w.stack::<DapesPeer>(d)
                    .is_some_and(|p| p.downloads_complete())
            })
        })
    }
}
