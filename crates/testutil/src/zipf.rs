//! Deterministic Zipf-distributed sampling for cache workloads.
//!
//! Real content popularity is heavy-tailed: a few catalog objects draw
//! most Interests while the long tail is touched rarely (the classic
//! web-cache observation). [`ZipfSampler`] draws ranks from
//! `P(k) ∝ 1 / (k+1)^s` over `n` items with a precomputed cumulative
//! table and binary search, so sampling is O(log n), allocation-free per
//! draw, and — seeded through the offline `rand` shim — bit-identical
//! across processes, which is what the CS bench's determinism gates pin.

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipf(`s`) sampler over ranks `0..n` (rank 0 most popular).
///
/// # Examples
///
/// ```
/// use dapes_testutil::zipf::ZipfSampler;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let zipf = ZipfSampler::new(1000, 0.9);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// `cdf[k]` = P(rank <= k); the last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the cumulative table for `n` items with exponent `s`
    /// (`s = 0` is uniform; larger `s` concentrates mass on low ranks).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "a Zipf sampler needs at least one item");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard the tail against rounding: a draw of exactly 1.0 cannot
        // happen (gen::<f64>() is [0,1)), but keep the invariant explicit.
        *cdf.last_mut().expect("nonempty") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true: `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        // First rank whose cumulative mass exceeds the draw.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range_and_are_deterministic() {
        let zipf = ZipfSampler::new(100, 0.9);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..1000).map(|_| zipf.sample(&mut rng)).collect()
        };
        let a = draw(42);
        assert!(a.iter().all(|&r| r < 100));
        assert_eq!(a, draw(42), "same seed, same sequence");
        assert_ne!(a, draw(43), "different seed diverges");
    }

    #[test]
    fn higher_exponent_concentrates_mass_on_low_ranks() {
        let n = 1000;
        let head = |s: f64| -> usize {
            let zipf = ZipfSampler::new(n, s);
            let mut rng = SmallRng::seed_from_u64(7);
            (0..10_000)
                .filter(|_| zipf.sample(&mut rng) < n / 100)
                .count()
        };
        let uniform = head(0.0);
        let zipfian = head(1.2);
        assert!(
            zipfian > uniform * 5,
            "head mass: zipf {zipfian} vs uniform {uniform}"
        );
    }

    #[test]
    fn uniform_exponent_covers_the_whole_range() {
        let zipf = ZipfSampler::new(16, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[zipf.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b), "every rank reachable");
    }

    #[test]
    fn single_item_always_samples_zero() {
        let zipf = ZipfSampler::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}
