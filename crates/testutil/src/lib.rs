//! Deterministic scenario harness for the DAPES test suites.
//!
//! The DAPES paper's evaluation rests on reproducible multi-peer wireless
//! scenarios. This crate makes those scenarios first-class, seeded, reusable
//! fixtures instead of per-test setup blocks:
//!
//! * [`scenario`] — [`ScenarioBuilder`]: collection/peer/world factories
//!   with seeded RNG placement, [`MobilityPreset`]s (fixed, random walk,
//!   waypoints, partition-crossing ferry) and per-run loss schedules;
//! * [`baseline`] — the same builder idiom for the Bithoc and Ekta
//!   comparison stacks;
//! * [`matrix`] — [`ScenarioMatrix`]: sweeps named [`Topology`]s × seeds
//!   and asserts per-cell invariants, so "new scenario" means one enum
//!   variant, not forty lines of setup;
//! * [`golden`] — [`GoldenMetrics`] assertions (completion, signature
//!   hygiene, frame classification, overhead bounds) shared by the
//!   integration, e2e and baseline suites;
//! * [`zipf`] — [`ZipfSampler`]: deterministic heavy-tailed popularity
//!   for cache workloads (the CS bench's Interest generator).
//!
//! # Example
//!
//! ```
//! use dapes_testutil::prelude::*;
//! use dapes_netsim::time::SimTime;
//!
//! let mut sc = ScenarioBuilder::new(42)
//!     .collection(1, 4096)
//!     .producer_at(0.0, 0.0)
//!     .downloader_at(20.0, 0.0)
//!     .build();
//! assert!(sc.run_until_complete(SimTime::from_secs(120)));
//! assert_scenario("doc", &sc, &GoldenMetrics::with_min_packets(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod golden;
pub mod matrix;
pub mod scenario;
pub mod zipf;

/// Glob-import of the harness types test suites need.
pub mod prelude {
    pub use crate::baseline::{
        BaselineProtocol, BaselineRole, BaselineScenario, BaselineSwarmBuilder,
    };
    pub use crate::golden::{
        assert_frames_classified, assert_frames_classified_among, assert_scenario, overhead_ratio,
        GoldenMetrics,
    };
    pub use crate::matrix::{MatrixCell, MatrixParams, ScenarioMatrix, Topology};
    pub use crate::scenario::{
        rogue_anchor, shared_anchor, CollectionParams, FaultProfile, MobilityPreset, PeerRole,
        Scenario, ScenarioBuilder, ShardedScenario,
    };
    pub use crate::zipf::ZipfSampler;
}

pub use prelude::*;

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use dapes_netsim::prelude::*;

    #[test]
    fn builder_assigns_roles_in_insertion_order() {
        let sc = ScenarioBuilder::new(1)
            .producer_at(0.0, 0.0)
            .downloader_at(20.0, 0.0)
            .relay_at(40.0, 0.0)
            .pure_forwarder_at(60.0, 0.0)
            .mobile_downloaders(2)
            .build();
        assert_eq!(sc.producers, vec![NodeId(0)]);
        assert_eq!(sc.downloaders, vec![NodeId(1), NodeId(4), NodeId(5)]);
        assert_eq!(sc.relays, vec![NodeId(2)]);
        assert_eq!(sc.forwarders, vec![NodeId(3)]);
        assert_eq!(sc.world.node_count(), 6);
    }

    #[test]
    fn same_seed_same_placement_and_outcome() {
        let build = || {
            ScenarioBuilder::new(7)
                .producer_at(0.0, 0.0)
                .downloader_at(20.0, 0.0)
                .mobile_downloaders(3)
                .build()
        };
        let (a, b) = (build(), build());
        for i in 0..a.world.node_count() {
            assert_eq!(
                a.world.position_of(NodeId(i as u32)),
                b.world.position_of(NodeId(i as u32))
            );
        }
        let run = |mut sc: Scenario| {
            sc.run_until(SimTime::from_secs(30));
            sc.world.stats().tx_frames
        };
        assert_eq!(run(a), run(b));
    }

    #[test]
    fn different_seeds_place_walkers_differently() {
        let walker_pos = |seed| {
            let sc = ScenarioBuilder::new(seed).mobile_downloaders(1).build();
            sc.world.position_of(sc.downloaders[0])
        };
        assert_ne!(walker_pos(1), walker_pos(2));
    }

    #[test]
    fn adjacent_pair_completes_and_passes_golden() {
        let mut sc = ScenarioBuilder::new(3)
            .collection(1, 4096)
            .producer_at(0.0, 0.0)
            .downloader_at(20.0, 0.0)
            .build();
        assert!(sc.run_until_complete(SimTime::from_secs(120)));
        assert_scenario("adjacent", &sc, &GoldenMetrics::with_min_packets(4));
    }

    #[test]
    fn loss_schedule_switches_rate_without_breaking_download() {
        // Heavy loss for the first 20 s, clean air afterwards: the download
        // must still finish, and determinism must hold.
        let run = || {
            let mut sc = ScenarioBuilder::new(5)
                .collection(1, 4096)
                .loss(0.6)
                .loss_schedule([(SimTime::from_secs(20), 0.0)])
                .producer_at(0.0, 0.0)
                .downloader_at(20.0, 0.0)
                .build();
            let done = sc.run_until_complete(SimTime::from_secs(300));
            (done, sc.world.stats().tx_frames)
        };
        let (done, frames) = run();
        assert!(done, "download should finish once the air clears");
        assert_eq!((done, frames), run(), "loss schedule broke determinism");
    }

    #[test]
    fn rogue_anchor_never_verifies_against_shared() {
        use dapes_crypto::signing::Signer;
        let good = shared_anchor();
        let evil = rogue_anchor();
        let sig = evil.keypair("p").sign(b"payload");
        assert!(!good.verify("p", b"payload", &sig));
    }

    #[test]
    fn ferry_preset_crosses_a_partition() {
        let mut sc = ScenarioBuilder::new(8)
            .range(50.0)
            .collection(1, 4096)
            .producer_at(0.0, 0.0)
            .peer(
                PeerRole::Downloader,
                MobilityPreset::Ferry {
                    from: Point::new(10.0, 0.0),
                    to: Point::new(290.0, 0.0),
                    depart: SimTime::from_secs(60),
                    travel: SimDuration::from_secs(60),
                },
            )
            .downloader_at(300.0, 0.0)
            .build();
        assert!(
            sc.run_until_complete(SimTime::from_secs(600)),
            "ferry should carry the collection across the partition"
        );
    }

    #[test]
    fn baseline_builder_runs_bithoc_pair() {
        let mut sw = BaselineSwarmBuilder::new(BaselineProtocol::Bithoc, 1)
            .seed_at(0.0, 0.0)
            .downloader_at(20.0, 0.0)
            .build();
        assert!(sw.run_until_complete(SimTime::from_secs(120)));
        assert!(sw.completed_at(sw.downloaders[0]).is_some());
    }

    #[test]
    fn baseline_builder_runs_ekta_pair() {
        let mut sw = BaselineSwarmBuilder::new(BaselineProtocol::Ekta, 2)
            .seed_at(0.0, 0.0)
            .downloader_at(20.0, 0.0)
            .build();
        assert!(sw.run_until_complete(SimTime::from_secs(180)));
    }

    #[test]
    fn smoke_matrix_is_green_and_deterministic() {
        // One cell with the determinism double-run; the full 3×3 sweep runs
        // in the umbrella integration suite.
        let cells = ScenarioMatrix::new()
            .topologies([Topology::AdjacentPair])
            .seeds([11])
            .check_determinism(true)
            .run();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].completed, cells[0].downloaders);
        assert!(cells[0].finished_at.is_some());
    }
}
