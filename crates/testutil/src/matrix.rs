//! The scenario matrix: topologies × seeds, with per-cell invariant checks.
//!
//! Each cell builds a deterministic scenario from a named [`Topology`] and a
//! seed, runs it to its deadline and asserts the golden invariants
//! (completion, signature hygiene, frame classification). The matrix is how
//! the test suites claim coverage over *scenario diversity* rather than a
//! single hand-tuned setup.

use crate::golden::{assert_scenario, GoldenMetrics};
use crate::scenario::{
    CollectionParams, FaultProfile, MobilityPreset, PeerRole, Scenario, ScenarioBuilder,
    ShardedScenario,
};
use dapes_core::prelude::*;
use dapes_netsim::prelude::*;

/// A named node layout, parameterized over the radio range so geometry
/// scales with the world it is dropped into.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Topology {
    /// Producer and one downloader within a third of the radio range.
    AdjacentPair,
    /// A line: producer, `relays` DAPES intermediates spaced at 85 % of
    /// range, downloader at the far end. Forwarding probability is forced
    /// to 1.0 so relaying is deterministic.
    Chain {
        /// Intermediate DAPES nodes between producer and downloader.
        relays: usize,
    },
    /// One producer surrounded by `downloaders` peers, all in range.
    Star {
        /// Downloaders placed on the circle.
        downloaders: usize,
    },
    /// Two segments beyond radio reach; a ferry dwells at the producer,
    /// then carries the collection across (paper Fig. 8a).
    PartitionedFerry,
    /// A mobile swarm: one stationary producer, random-walking downloaders
    /// and pure forwarders (paper §VI-B1 in miniature).
    MobileSwarm {
        /// Random-walking downloaders.
        downloaders: usize,
        /// Random-walking pure forwarders.
        forwarders: usize,
    },
}

impl Topology {
    /// A short label for assertion messages.
    pub fn label(&self) -> String {
        match self {
            Topology::AdjacentPair => "adjacent-pair".into(),
            Topology::Chain { relays } => format!("chain-{relays}-relays"),
            Topology::Star { downloaders } => format!("star-{downloaders}"),
            Topology::PartitionedFerry => "partitioned-ferry".into(),
            Topology::MobileSwarm {
                downloaders,
                forwarders,
            } => format!("mobile-swarm-{downloaders}x{forwarders}"),
        }
    }

    /// A generous per-topology completion deadline.
    pub fn deadline(&self) -> SimTime {
        match self {
            Topology::AdjacentPair => SimTime::from_secs(180),
            Topology::Chain { relays } => SimTime::from_secs(300 + 120 * *relays as u64),
            Topology::Star { .. } => SimTime::from_secs(300),
            Topology::PartitionedFerry => SimTime::from_secs(600),
            Topology::MobileSwarm { .. } => SimTime::from_secs(1500),
        }
    }

    /// The completion deadline with a fault axis applied: the base deadline
    /// plus the time until the last fault event, so a cell has as long to
    /// recover as it had to transfer.
    pub fn deadline_with_faults(&self, faults: &[FaultProfile]) -> SimTime {
        let last = faults
            .iter()
            .map(FaultProfile::last_event)
            .max()
            .unwrap_or(SimTime::ZERO);
        SimTime::from_micros(self.deadline().as_micros() + last.as_micros())
    }

    /// Builds the scenario for one `(topology, seed)` cell.
    ///
    /// # Panics
    ///
    /// Panics when `params.exec.cores > 1`; multi-core cells go through
    /// [`build_sharded`](Self::build_sharded).
    pub fn build(&self, seed: u64, params: &MatrixParams) -> Scenario {
        self.builder(seed, params).build()
    }

    /// Builds the same cell on the sharded multi-core engine.
    pub fn build_sharded(&self, seed: u64, params: &MatrixParams) -> ShardedScenario {
        self.builder(seed, params).build_sharded()
    }

    /// The fully configured builder for one `(topology, seed)` cell.
    fn builder(&self, seed: u64, params: &MatrixParams) -> ScenarioBuilder {
        let r = params.range;
        let mut base = ScenarioBuilder::new(seed)
            .range(r)
            .loss(params.loss)
            .exec(params.exec)
            .collection_params(params.collection.clone())
            .config(params.config.clone());
        // Attackers sit near the topology's hub, in radio range of the
        // producer. They are instantiated after every honest peer, so the
        // honest layout is unchanged by the adversarial axis.
        let hub = match *self {
            Topology::MobileSwarm { .. } => (150.0, 150.0),
            _ => (0.0, 0.0),
        };
        for &kind in &params.adversaries {
            base = base.adversary_at(kind, hub.0 + r / 4.0, hub.1 + r / 6.0);
        }
        base = base.faults(params.faults.iter().cloned());
        match *self {
            Topology::AdjacentPair => base.producer_at(0.0, 0.0).downloader_at(r / 3.0, 0.0),
            Topology::Chain { relays } => {
                let spacing = 0.85 * r;
                // The paper forwards with p = 0.2 by default; a chain test
                // needs the relay decision to be deterministic.
                let mut cfg = params.config.clone();
                cfg.forward_prob = 1.0;
                let mut b = base.config(cfg).producer_at(0.0, 0.0);
                for i in 0..relays {
                    b = b.relay_at(spacing * (i + 1) as f64, 0.0);
                }
                b.downloader_at(spacing * (relays + 1) as f64, 0.0)
            }
            Topology::Star { downloaders } => {
                let mut b = base.producer_at(0.0, 0.0);
                let radius = r / 3.0;
                for i in 0..downloaders {
                    let theta = std::f64::consts::TAU * i as f64 / downloaders as f64;
                    b = b.downloader_at(radius * theta.cos(), radius * theta.sin());
                }
                b
            }
            Topology::PartitionedFerry => {
                let far = 5.0 * r;
                base.producer_at(0.0, 0.0)
                    .peer(
                        PeerRole::Downloader,
                        MobilityPreset::Ferry {
                            from: Point::new(r / 6.0, 0.0),
                            to: Point::new(far - r / 6.0, 0.0),
                            depart: SimTime::from_secs(60),
                            travel: SimDuration::from_secs(60),
                        },
                    )
                    .downloader_at(far, 0.0)
            }
            Topology::MobileSwarm {
                downloaders,
                forwarders,
            } => base
                .producer_at(150.0, 150.0)
                .mobile_downloaders(downloaders)
                .mobile_pure_forwarders(forwarders),
        }
    }
}

/// Knobs shared by every cell of a matrix run.
#[derive(Clone, Debug)]
pub struct MatrixParams {
    /// Radio range in metres.
    pub range: f64,
    /// Bernoulli frame loss.
    pub loss: f64,
    /// The collection every cell shares.
    pub collection: CollectionParams,
    /// The DAPES configuration (topologies may override single knobs).
    pub config: DapesConfig,
    /// Attacker nodes dropped into every cell (the adversarial axis).
    /// Each is placed near the topology's hub, in radio range of the
    /// producer; empty means a benign matrix.
    pub adversaries: Vec<AdversaryKind>,
    /// Fault profiles applied to every cell (the churn axis): crash/restart,
    /// permanent departure or partition-and-heal of role-relative nodes.
    /// Cell deadlines extend by the last fault instant; empty means a
    /// fault-free matrix.
    pub faults: Vec<FaultProfile>,
    /// Execution-strategy profile shared by every cell: queue, delivery,
    /// delivery-event granularity, decode regime and shard count.
    /// Equivalence tests run the same cells under differing profiles and
    /// compare traces; `cores > 1` routes cells onto the sharded engine.
    pub exec: ExecProfile,
}

impl Default for MatrixParams {
    fn default() -> Self {
        MatrixParams {
            range: 60.0,
            loss: 0.0,
            collection: CollectionParams::default(),
            config: DapesConfig::default(),
            adversaries: Vec::new(),
            faults: Vec::new(),
            exec: ExecProfile::default(),
        }
    }
}

/// Outcome of one `(topology, seed)` cell.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Which topology ran.
    pub topology: Topology,
    /// The world seed.
    pub seed: u64,
    /// Downloaders that finished before the deadline.
    pub completed: usize,
    /// Downloaders measured.
    pub downloaders: usize,
    /// Completion time of the slowest downloader, when all finished.
    pub finished_at: Option<SimTime>,
    /// Frames on the air over the whole run.
    pub tx_frames: u64,
    /// Control-overhead ratio at the end of the run.
    pub overhead_ratio: f64,
}

/// Sweeps topologies × seeds, asserting golden invariants per cell.
#[derive(Clone, Debug)]
pub struct ScenarioMatrix {
    topologies: Vec<Topology>,
    seeds: Vec<u64>,
    params: MatrixParams,
    golden: GoldenMetrics,
    check_determinism: bool,
}

impl Default for ScenarioMatrix {
    /// Three topologies × three seeds — the harness's smoke matrix.
    fn default() -> Self {
        ScenarioMatrix {
            topologies: vec![
                Topology::AdjacentPair,
                Topology::Chain { relays: 1 },
                Topology::Star { downloaders: 3 },
            ],
            seeds: vec![1, 2, 3],
            params: MatrixParams::default(),
            golden: GoldenMetrics::default(),
            check_determinism: false,
        }
    }
}

impl ScenarioMatrix {
    /// The default smoke matrix.
    pub fn new() -> Self {
        ScenarioMatrix::default()
    }

    /// Replaces the topology axis.
    pub fn topologies<I: IntoIterator<Item = Topology>>(mut self, t: I) -> Self {
        self.topologies = t.into_iter().collect();
        self
    }

    /// Replaces the seed axis.
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, s: I) -> Self {
        self.seeds = s.into_iter().collect();
        self
    }

    /// Replaces the shared cell parameters.
    pub fn params(mut self, p: MatrixParams) -> Self {
        self.params = p;
        self
    }

    /// Replaces the per-cell golden expectations.
    pub fn golden(mut self, g: GoldenMetrics) -> Self {
        self.golden = g;
        self
    }

    /// Re-runs every cell and asserts bit-identical frame counts and
    /// completion times (costly: doubles the run time).
    pub fn check_determinism(mut self, check: bool) -> Self {
        self.check_determinism = check;
        self
    }

    /// Runs one cell to its deadline and checks invariants. Cells whose
    /// profile asks for more than one core run on the sharded engine
    /// instead (with the determinism re-run but without the golden
    /// asserts, whose expectations are calibrated on event-exact
    /// sequential observability).
    pub fn run_cell(&self, topology: Topology, seed: u64) -> MatrixCell {
        if self.params.exec.cores > 1 {
            return self.run_cell_sharded(topology, seed);
        }
        let label = format!("{}/seed-{seed}", topology.label());
        let deadline = topology.deadline_with_faults(&self.params.faults);
        let run = || {
            let mut sc = topology.build(seed, &self.params);
            sc.run_until_complete(deadline);
            sc
        };
        let sc = run();
        if self.check_determinism {
            let sc2 = run();
            assert_eq!(
                sc.world.stats().tx_frames,
                sc2.world.stats().tx_frames,
                "[{label}] same seed, different frame count"
            );
            assert_eq!(
                sc.completion_times(),
                sc2.completion_times(),
                "[{label}] same seed, different completion times"
            );
        }
        assert_scenario(&label, &sc, &self.golden);
        let times = sc.completion_times();
        MatrixCell {
            topology,
            seed,
            completed: times.iter().filter(|t| t.is_some()).count(),
            downloaders: sc.downloaders.len(),
            finished_at: times
                .iter()
                .copied()
                .collect::<Option<Vec<_>>>()
                .and_then(|v| v.into_iter().max()),
            tx_frames: sc.world.stats().tx_frames,
            overhead_ratio: crate::golden::overhead_ratio(sc.world.stats()),
        }
    }

    /// The sharded-engine variant of [`run_cell`](Self::run_cell).
    fn run_cell_sharded(&self, topology: Topology, seed: u64) -> MatrixCell {
        let label = format!(
            "{}/seed-{seed}/cores-{}",
            topology.label(),
            self.params.exec.cores
        );
        let deadline = topology.deadline_with_faults(&self.params.faults);
        let run = || {
            let mut sc = topology.build_sharded(seed, &self.params);
            sc.run_until_complete(deadline);
            sc
        };
        let sc = run();
        if self.check_determinism {
            let sc2 = run();
            assert_eq!(
                sc.world.stats().tx_frames,
                sc2.world.stats().tx_frames,
                "[{label}] same seed and cores, different frame count"
            );
            assert_eq!(
                sc.completion_times(),
                sc2.completion_times(),
                "[{label}] same seed and cores, different completion times"
            );
        }
        let times = sc.completion_times();
        MatrixCell {
            topology,
            seed,
            completed: times.iter().filter(|t| t.is_some()).count(),
            downloaders: sc.downloaders.len(),
            finished_at: times
                .iter()
                .copied()
                .collect::<Option<Vec<_>>>()
                .and_then(|v| v.into_iter().max()),
            tx_frames: sc.world.stats().tx_frames,
            overhead_ratio: crate::golden::overhead_ratio(&sc.world.stats()),
        }
    }

    /// Runs the full matrix, returning one cell outcome per combination.
    pub fn run(&self) -> Vec<MatrixCell> {
        let mut cells = Vec::with_capacity(self.topologies.len() * self.seeds.len());
        for &topology in &self.topologies {
            for &seed in &self.seeds {
                cells.push(self.run_cell(topology, seed));
            }
        }
        cells
    }
}
