//! Scenario builders for the IP/MANET baselines (Bithoc, Ekta), sharing the
//! mobility presets and determinism conventions of the DAPES builder.

use crate::scenario::MobilityPreset;
use dapes_baselines::prelude::*;
use dapes_netsim::prelude::*;

/// Which baseline stack populates the swarm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineProtocol {
    /// BitTorrent-over-MANET: DSDV + HELLO floods + TCP-lite pieces.
    Bithoc,
    /// Pastry-style DHT over DSR, fetching pieces over UDP.
    Ekta,
}

/// What a baseline node does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineRole {
    /// Holds every piece from the start.
    Seed,
    /// Fetches the swarm's pieces.
    Downloader,
    /// Routes for others without participating in the swarm.
    Router,
}

struct NodeSpec {
    role: BaselineRole,
    mobility: MobilityPreset,
}

/// Builder for a deterministic baseline swarm.
pub struct BaselineSwarmBuilder {
    protocol: BaselineProtocol,
    seed: u64,
    range: f64,
    loss: f64,
    spec: SwarmSpec,
    nodes: Vec<NodeSpec>,
}

impl BaselineSwarmBuilder {
    /// Starts a swarm of the given protocol with the given world seed.
    /// Defaults: 60 m range, zero loss, the 8-piece/1 KiB two-file swarm
    /// the pre-existing baseline suite used.
    pub fn new(protocol: BaselineProtocol, seed: u64) -> Self {
        BaselineSwarmBuilder {
            protocol,
            seed,
            range: 60.0,
            loss: 0.0,
            spec: SwarmSpec {
                total_pieces: 8,
                pieces_per_file: 4,
                piece_size: 1024,
            },
            nodes: Vec::new(),
        }
    }

    /// Radio range in metres.
    pub fn range(mut self, range: f64) -> Self {
        self.range = range;
        self
    }

    /// Bernoulli frame-loss rate.
    pub fn loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Replaces the swarm content description.
    pub fn spec(mut self, spec: SwarmSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Adds a node with an explicit role and mobility preset.
    pub fn node(mut self, role: BaselineRole, mobility: MobilityPreset) -> Self {
        self.nodes.push(NodeSpec { role, mobility });
        self
    }

    /// Stationary seed at `(x, y)`.
    pub fn seed_at(self, x: f64, y: f64) -> Self {
        self.node(BaselineRole::Seed, MobilityPreset::at(x, y))
    }

    /// Stationary downloader at `(x, y)`.
    pub fn downloader_at(self, x: f64, y: f64) -> Self {
        self.node(BaselineRole::Downloader, MobilityPreset::at(x, y))
    }

    /// Stationary router at `(x, y)`.
    pub fn router_at(self, x: f64, y: f64) -> Self {
        self.node(BaselineRole::Router, MobilityPreset::at(x, y))
    }

    /// Instantiates the world and peers. Node ids follow insertion order;
    /// for Ekta, the DHT membership is every seed and downloader.
    pub fn build(self) -> BaselineScenario {
        let mut world = World::new(WorldConfig {
            seed: self.seed,
            range: self.range,
            phy: PhyConfig {
                loss_rate: self.loss,
                ..PhyConfig::default()
            },
            ..WorldConfig::default()
        });

        let members: Vec<u32> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.role != BaselineRole::Router)
            .map(|(i, _)| i as u32)
            .collect();

        let mut downloaders = Vec::new();
        for (i, spec) in self.nodes.into_iter().enumerate() {
            let id = i as u32;
            let stack: Box<dyn NetStack> = match self.protocol {
                BaselineProtocol::Bithoc => {
                    let role = match spec.role {
                        BaselineRole::Seed => BithocRole::Seed,
                        BaselineRole::Downloader => BithocRole::Downloader,
                        BaselineRole::Router => BithocRole::Router,
                    };
                    Box::new(BithocPeer::new(
                        id,
                        role,
                        self.spec.clone(),
                        BithocConfig::default(),
                    ))
                }
                BaselineProtocol::Ekta => {
                    let role = match spec.role {
                        BaselineRole::Seed => EktaRole::Seed,
                        BaselineRole::Downloader => EktaRole::Downloader,
                        BaselineRole::Router => EktaRole::Router,
                    };
                    Box::new(EktaPeer::new(
                        id,
                        role,
                        self.spec.clone(),
                        members.clone(),
                        EktaConfig::default(),
                    ))
                }
            };
            let node = world.add_node(spec.mobility.into_mobility(), stack);
            if spec.role == BaselineRole::Downloader {
                downloaders.push(node);
            }
        }

        BaselineScenario {
            world,
            downloaders,
            protocol: self.protocol,
        }
    }
}

/// A built baseline swarm.
pub struct BaselineScenario {
    /// The simulator.
    pub world: World,
    /// Downloader node ids, in insertion order.
    pub downloaders: Vec<NodeId>,
    /// Which stack the nodes run.
    pub protocol: BaselineProtocol,
}

impl BaselineScenario {
    /// Whether `node` holds every piece.
    pub fn completed(&self, node: NodeId) -> bool {
        match self.protocol {
            BaselineProtocol::Bithoc => self
                .world
                .stack::<BithocPeer>(node)
                .is_some_and(|p| p.is_complete()),
            BaselineProtocol::Ekta => self
                .world
                .stack::<EktaPeer>(node)
                .is_some_and(|p| p.is_complete()),
        }
    }

    /// Whether every downloader completed.
    pub fn all_complete(&self) -> bool {
        self.downloaders.iter().all(|&d| self.completed(d))
    }

    /// When `node` completed, if it did.
    pub fn completed_at(&self, node: NodeId) -> Option<SimTime> {
        match self.protocol {
            BaselineProtocol::Bithoc => self
                .world
                .stack::<BithocPeer>(node)
                .and_then(|p| p.completed_at()),
            BaselineProtocol::Ekta => self
                .world
                .stack::<EktaPeer>(node)
                .and_then(|p| p.completed_at()),
        }
    }

    /// Runs until every downloader finished or `deadline`. Returns whether
    /// all finished.
    pub fn run_until_complete(&mut self, deadline: SimTime) -> bool {
        let downloaders = self.downloaders.clone();
        let protocol = self.protocol;
        self.world.run_until_cond(deadline, |w| {
            downloaders.iter().all(|&d| match protocol {
                BaselineProtocol::Bithoc => {
                    w.stack::<BithocPeer>(d).is_some_and(|p| p.is_complete())
                }
                BaselineProtocol::Ekta => w.stack::<EktaPeer>(d).is_some_and(|p| p.is_complete()),
            })
        })
    }

    /// Runs until `deadline` unconditionally.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.world.run_until(deadline);
    }
}
