//! Golden-metric assertions shared by the integration, e2e and baseline
//! suites: download completion, signature hygiene and overhead bounds.

use crate::scenario::Scenario;
use dapes_core::stats::kinds;
use dapes_netsim::prelude::*;

/// Expected invariants for a finished DAPES scenario.
#[derive(Clone, Debug)]
pub struct GoldenMetrics {
    /// Every downloader must have completed.
    pub all_complete: bool,
    /// No peer may record a verification failure.
    pub no_verify_failures: bool,
    /// Minimum content Data packets each downloader received.
    pub min_data_received: u64,
    /// Minimum packets each downloader verified.
    pub min_packets_verified: u64,
    /// Every transmitted frame must carry a known DAPES frame kind.
    pub all_frames_classified: bool,
    /// Upper bound on total frames on the air, when the test pins one.
    pub max_tx_frames: Option<u64>,
    /// Upper bound on the control-overhead ratio (non-content-data frames
    /// over total frames), when the test pins one.
    pub max_overhead_ratio: Option<f64>,
}

impl Default for GoldenMetrics {
    fn default() -> Self {
        GoldenMetrics {
            all_complete: true,
            no_verify_failures: true,
            min_data_received: 0,
            min_packets_verified: 0,
            all_frames_classified: true,
            max_tx_frames: None,
            max_overhead_ratio: None,
        }
    }
}

impl GoldenMetrics {
    /// The default expectations plus a floor on received/verified packets —
    /// typically the collection's packet count.
    pub fn with_min_packets(min: u64) -> Self {
        GoldenMetrics {
            min_data_received: min,
            min_packets_verified: min,
            ..GoldenMetrics::default()
        }
    }
}

/// Fraction of transmitted frames that are not content Data — the harness's
/// overhead figure of merit (the paper's Fig. 10b normalises similarly).
pub fn overhead_ratio(stats: &Stats) -> f64 {
    if stats.tx_frames == 0 {
        return 0.0;
    }
    let content = stats.tx_for_kinds(&[kinds::CONTENT_DATA]);
    (stats.tx_frames - content) as f64 / stats.tx_frames as f64
}

/// Panics unless every transmitted frame carries a known DAPES kind.
pub fn assert_frames_classified(stats: &Stats) {
    assert_frames_classified_among(stats, &kinds::ALL_DAPES);
}

/// Panics unless every transmitted frame carries one of `allowed` kinds.
/// Adversarial scenarios pass the DAPES kinds plus
/// [`dapes_core::adversary::attack_kinds::ALL`].
pub fn assert_frames_classified_among(stats: &Stats, allowed: &[FrameKind]) {
    let classified = stats.tx_for_kinds(allowed);
    assert_eq!(
        classified, stats.tx_frames,
        "unclassified frames on the air: {} classified of {} total",
        classified, stats.tx_frames
    );
}

/// Checks a finished scenario against the golden expectations, panicking
/// with a labelled message on the first violation.
pub fn assert_scenario(label: &str, scenario: &Scenario, golden: &GoldenMetrics) {
    if golden.all_complete {
        for (i, &d) in scenario.downloaders.iter().enumerate() {
            assert!(
                scenario.completed(d),
                "[{label}] downloader #{i} (node {d:?}) incomplete at {:?}",
                scenario.world.now()
            );
        }
    }
    for (i, &d) in scenario.downloaders.iter().enumerate() {
        let peer = scenario.peer(d).expect("downloader is a DAPES peer");
        let stats = peer.stats();
        if golden.no_verify_failures {
            assert_eq!(
                stats.verify_failures, 0,
                "[{label}] downloader #{i} recorded verification failures"
            );
        }
        assert!(
            stats.data_received >= golden.min_data_received,
            "[{label}] downloader #{i} received {} < {} data packets",
            stats.data_received,
            golden.min_data_received
        );
        assert!(
            stats.packets_verified >= golden.min_packets_verified,
            "[{label}] downloader #{i} verified {} < {} packets",
            stats.packets_verified,
            golden.min_packets_verified
        );
    }
    let stats = scenario.world.stats();
    if golden.all_frames_classified {
        if scenario.adversaries.is_empty() {
            assert_frames_classified(stats);
        } else {
            let allowed: Vec<FrameKind> = kinds::ALL_DAPES
                .iter()
                .chain(dapes_core::adversary::attack_kinds::ALL.iter())
                .copied()
                .collect();
            assert_frames_classified_among(stats, &allowed);
        }
    }
    if let Some(cap) = golden.max_tx_frames {
        assert!(
            stats.tx_frames <= cap,
            "[{label}] {} frames on the air exceeds the golden cap {cap}",
            stats.tx_frames
        );
    }
    if let Some(cap) = golden.max_overhead_ratio {
        let ratio = overhead_ratio(stats);
        assert!(
            ratio <= cap,
            "[{label}] overhead ratio {ratio:.3} exceeds the golden cap {cap:.3}"
        );
    }
}
