//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate mirrors
//! the slice of criterion's API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — with a
//! deliberately simple measurement loop: a short warm-up, then timed
//! batches until a wall-clock budget is spent, reporting the median
//! per-iteration time. Statistical analysis, plots and HTML reports are
//! out of scope; the numbers are for trend-watching, not publication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to the closure given to `bench_function`; drives the timing loop.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for batches of ~10 ms.
        let t0 = Instant::now();
        black_box(f());
        let probe = t0.elapsed().max(Duration::from_nanos(50));
        let batch = (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 100_000);

        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.is_empty() {
            let b0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(b0.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= 256 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            budget: self.budget,
        };
        f(&mut b);
        report(name, b.ns_per_iter);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the simple loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, ns: f64) {
    if ns >= 1_000_000.0 {
        println!("{name:<40} {:>12.3} ms/iter", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        println!("{name:<40} {:>12.3} µs/iter", ns / 1_000.0);
    } else {
        println!("{name:<40} {:>12.1} ns/iter", ns);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_nonzero_time() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut captured = 0.0;
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            captured = b.ns_per_iter;
        });
        // The closure runs before reporting; ns_per_iter was observable
        // as non-negative (zero only on a pathological clock).
        assert!(captured >= 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
