//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the (small) slice of the `rand` 0.8 API the DAPES
//! workspace actually uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::SmallRng`]. The generator behind `SmallRng` is xoshiro256++
//! seeded through SplitMix64 — the same construction the real `SmallRng`
//! uses on 64-bit targets — so runs are deterministic, fast and of
//! good statistical quality. It is **not** cryptographically secure,
//! which matches the contract of the real `SmallRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer/float types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`. Panics if `high < low`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let span = (high as i128 - low as i128 + 1) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let unit: f64 = Standard::from_rng(rng);
                low + (unit as $t) * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let unit: f64 = Standard::from_rng(rng);
                low + (unit as $t) * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit: f64 = f64::from_rng(self);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic, non-cryptographic PRNG
    /// (xoshiro256++ seeded via SplitMix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
    }
}
