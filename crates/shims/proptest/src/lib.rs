//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! [`prelude::any`], range strategies, [`collection::vec`],
//! [`option::of`], [`strategy::Strategy::prop_map`] and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message of the underlying `assert!`) but is not minimised.
//! * **Deterministic.** Case N of test T always sees the same inputs —
//!   the RNG is seeded from a hash of the test name and the case index,
//!   so failures reproduce exactly and CI is stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::SmallRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform,
    {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform,
    {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S1 / s1, S2 / s2);
    impl_tuple_strategy!(S1 / s1, S2 / s2, S3 / s3);
    impl_tuple_strategy!(S1 / s1, S2 / s2, S3 / s3, S4 / s4);

    /// Strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default generation for primitive types.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arb_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    arb_via_gen!(u8, u16, u32, u64, usize, bool, f64, f32);

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen::<u32>() as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen::<u64>() as i64
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose lengths fall in `size` (half-open, like
    /// proptest's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Option`s wrapping strategy `S`.
    pub struct OptionStrategy<S>(S);

    /// Generates `Some` three times out of four, `None` otherwise
    /// (matching proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! Configuration and the per-case RNG derivation.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG for case `case` of the test named `name`:
    /// FNV-1a over the name, mixed with the case index.
    pub fn case_rng(name: &str, case: u32) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5eed))
    }
}

pub mod prelude {
    //! Glob-import mirroring `proptest::prelude`.

    pub use crate::strategy::{Any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The canonical strategy for "any value of type `T`".
    pub fn any<T: crate::arbitrary::Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Declares property tests. Each function body runs once per generated
/// case; generation is deterministic per test name and case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking; panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the rest of the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in 0usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(s in (0u32..10).prop_map(|n| n * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert!(s < 20);
        }

        #[test]
        fn option_of_produces_both(o in crate::option::of(any::<u8>())) {
            // Not a distribution test — just type-level plumbing.
            let _ = o;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = crate::collection::vec(any::<u64>(), 0..8);
        let a: Vec<Vec<u64>> = (0..16)
            .map(|c| strat.generate(&mut crate::test_runner::case_rng("t", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..16)
            .map(|c| strat.generate(&mut crate::test_runner::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn default_config_runs() {
        proptest! {
            fn inner(x in 0u8..=255) { prop_assert!(x as u32 <= 255); }
        }
        inner();
    }
}
