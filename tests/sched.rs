//! Scheduler-refactor equivalence suite.
//!
//! The timer wheel, the generation-tagged timer slab, the pooled command
//! buffers, and the name-first lazy decode path must all be *invisible* to
//! protocol behaviour: full DAPES scenario runs give bit-identical traces
//! (and independently satisfy the golden metrics) under every combination
//! of event-queue implementation and decode regime.

use dapes_netsim::prelude::*;
use dapes_testutil::prelude::*;

fn matrix_axes() -> (Vec<Topology>, Vec<u64>) {
    (
        vec![
            Topology::AdjacentPair,
            Topology::Chain { relays: 1 },
            Topology::Star { downloaders: 3 },
        ],
        vec![1, 3],
    )
}

fn trace_fingerprint(sc: &Scenario) -> (u64, u64, u64, u64, u64, Vec<Option<SimTime>>) {
    let s = sc.world.stats();
    (
        s.tx_frames,
        s.delivered,
        s.channel_losses,
        s.collision_drops,
        s.delivered_payload_bytes,
        sc.completion_times(),
    )
}

fn run_cell(
    topology: Topology,
    seed: u64,
    queue: QueueMode,
    lazy_peek: bool,
) -> (u64, u64, u64, u64, u64, Vec<Option<SimTime>>) {
    run_cell_with(topology, seed, queue, DeliveryEvents::default(), lazy_peek)
}

fn run_cell_with(
    topology: Topology,
    seed: u64,
    queue: QueueMode,
    delivery_events: DeliveryEvents,
    lazy_peek: bool,
) -> (u64, u64, u64, u64, u64, Vec<Option<SimTime>>) {
    run_cell_full(topology, seed, queue, delivery_events, lazy_peek, true)
}

fn run_cell_full(
    topology: Topology,
    seed: u64,
    queue: QueueMode,
    delivery_events: DeliveryEvents,
    lazy_peek: bool,
    relay_patch: bool,
) -> (u64, u64, u64, u64, u64, Vec<Option<SimTime>>) {
    let params = MatrixParams {
        exec: ExecProfile::default()
            .with_queue(queue)
            .with_delivery_events(delivery_events)
            .with_lazy_peek(lazy_peek)
            .with_relay_patch(relay_patch),
        ..MatrixParams::default()
    };
    let mut sc = topology.build(seed, &params);
    sc.run_until_complete(topology.deadline());
    assert_scenario(
        &format!(
            "{}/seed-{seed}/{queue:?}/{delivery_events:?}/lazy-{lazy_peek}/patch-{relay_patch}",
            topology.label()
        ),
        &sc,
        &GoldenMetrics::default(),
    );
    trace_fingerprint(&sc)
}

#[test]
fn golden_traces_bit_identical_across_relay_patch_modes() {
    // The decode-free relay path (copy-on-write hop-limit patch, no
    // `Interest` ever constructed) must be invisible to the protocol.
    let (topologies, seeds) = matrix_axes();
    for &topology in &topologies {
        for &seed in &seeds {
            assert_eq!(
                run_cell_full(
                    topology,
                    seed,
                    QueueMode::Wheel,
                    DeliveryEvents::Batched,
                    true,
                    true
                ),
                run_cell_full(
                    topology,
                    seed,
                    QueueMode::Wheel,
                    DeliveryEvents::Batched,
                    true,
                    false
                ),
                "[{}/seed-{seed}] relay patch changed the trace",
                topology.label()
            );
        }
    }
}

#[test]
fn golden_traces_bit_identical_across_queue_modes() {
    let (topologies, seeds) = matrix_axes();
    for &topology in &topologies {
        for &seed in &seeds {
            assert_eq!(
                run_cell(topology, seed, QueueMode::Wheel, true),
                run_cell(topology, seed, QueueMode::Heap, true),
                "[{}/seed-{seed}] queue modes diverged",
                topology.label()
            );
        }
    }
}

#[test]
fn golden_traces_bit_identical_across_decode_regimes() {
    let (topologies, seeds) = matrix_axes();
    for &topology in &topologies {
        for &seed in &seeds {
            assert_eq!(
                run_cell(topology, seed, QueueMode::Wheel, true),
                run_cell(topology, seed, QueueMode::Wheel, false),
                "[{}/seed-{seed}] lazy peek changed the trace",
                topology.label()
            );
        }
    }
}

#[test]
fn golden_traces_bit_identical_across_delivery_event_modes() {
    let (topologies, seeds) = matrix_axes();
    for &topology in &topologies {
        for &seed in &seeds {
            assert_eq!(
                run_cell_with(
                    topology,
                    seed,
                    QueueMode::Wheel,
                    DeliveryEvents::Batched,
                    true
                ),
                run_cell_with(
                    topology,
                    seed,
                    QueueMode::Wheel,
                    DeliveryEvents::PerReceiver,
                    true
                ),
                "[{}/seed-{seed}] delivery-event modes diverged",
                topology.label()
            );
        }
    }
}

#[test]
fn legacy_corner_heap_and_eager_matches_the_optimized_stack() {
    // The fully-legacy corner (heap queue + eager decode + one event per
    // receiver) against the fully optimized one, over a mobility-rich cell
    // that exercises timers, cancellations, retransmissions and overhearing
    // together.
    let topology = Topology::PartitionedFerry;
    assert_eq!(
        run_cell_with(topology, 1, QueueMode::Wheel, DeliveryEvents::Batched, true),
        run_cell_with(
            topology,
            1,
            QueueMode::Heap,
            DeliveryEvents::PerReceiver,
            false
        ),
        "optimized and legacy control planes diverged"
    );
}

/// The tentpole regression: in batched mode one transmission enqueues
/// exactly one arrival event, across a full DAPES scenario; the
/// per-receiver baseline enqueues one per successful delivery.
#[test]
fn one_transmission_enqueues_one_arrival_event_in_batched_mode() {
    let topology = Topology::Star { downloaders: 3 };
    let run = |delivery_events: DeliveryEvents| {
        let params = MatrixParams {
            exec: ExecProfile::default().with_delivery_events(delivery_events),
            ..MatrixParams::default()
        };
        let mut sc = topology.build(1, &params);
        sc.run_until_complete(topology.deadline());
        let s = sc.world.stats();
        (s.tx_frames, s.delivered, s.arrival_events)
    };
    let (tx, _, arrivals) = run(DeliveryEvents::Batched);
    assert!(tx > 0);
    assert_eq!(arrivals, tx, "batched: one arrival event per transmission");
    let (_, delivered, arrivals) = run(DeliveryEvents::PerReceiver);
    assert_eq!(
        arrivals, delivered,
        "per-receiver: one arrival event per delivery"
    );
}

#[test]
fn timer_slab_does_not_leak_across_a_full_scenario() {
    // DAPES peers arm and cancel pending-transmission timers constantly; a
    // completed run must leave only the steady-state timers (per-peer tick
    // and discovery beacons) armed, with slot allocation bounded by peak
    // concurrency — not by the tens of thousands of timers armed over the
    // run (the old `cancelled_timers` set retained cancelled ids forever).
    let params = MatrixParams::default();
    let topology = Topology::Star { downloaders: 3 };
    let mut sc = topology.build(1, &params);
    sc.run_until_complete(topology.deadline());
    // Keep the swarm ticking (discovery beacons, housekeeping, advert
    // timers) well past completion so timer volume dwarfs concurrency.
    let done = sc.world.now();
    sc.world.run_until(done + SimDuration::from_secs(120));
    let api_calls = sc.world.stats().api_calls;
    let live = sc.world.live_timers();
    let allocated = sc.world.timer_slots_allocated();
    assert!(
        api_calls > 1_000,
        "scenario must be timer-rich: {api_calls}"
    );
    assert!(
        live <= 4 * sc.world.node_count(),
        "live timers {live} exceed steady state for {} nodes",
        sc.world.node_count()
    );
    assert!(
        allocated <= 16 * sc.world.node_count(),
        "slot allocation {allocated} is volume-bound, not concurrency-bound"
    );
}

#[test]
fn lazy_peek_actually_resolves_frames_without_decode() {
    // Sanity that the fast path is exercised in a real scenario (not just
    // equivalent): star downloaders overhear each other's content interests
    // and answers, so duplicate nonces and CS hits must resolve by peek —
    // and the per-outcome counters must decompose the total exactly.
    let params = MatrixParams::default();
    let topology = Topology::Star { downloaders: 3 };
    let mut sc = topology.build(1, &params);
    sc.run_until_complete(topology.deadline());
    // Post-completion discovery chatter also feeds the fast path.
    let done = sc.world.now();
    sc.world.run_until(done + SimDuration::from_secs(60));
    let (mut peeked, mut cs, mut dup, mut fib, mut unsol) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut relayed = 0u64;
    for &id in sc.downloaders.iter().chain(sc.producers.iter()) {
        let Some(p) = sc.world.stack::<dapes_core::peer::DapesPeer>(id) else {
            continue;
        };
        let s = p.stats();
        assert_eq!(
            s.peek_cs_hits
                + s.peek_dup_nonces
                + s.peek_fib_drops
                + s.peek_unsolicited_data
                + s.peek_relayed
                + s.peek_relay_suppressed,
            s.frames_peek_resolved,
            "per-outcome peek counters must sum to the total for node {id}"
        );
        peeked += s.frames_peek_resolved;
        cs += s.peek_cs_hits;
        dup += s.peek_dup_nonces;
        fib += s.peek_fib_drops;
        unsol += s.peek_unsolicited_data;
        relayed += s.peek_relayed + s.peek_relay_suppressed;
    }
    assert!(peeked > 0, "no frame ever resolved from its peeked header");
    assert!(
        dup > 0,
        "overheard re-broadcasts must resolve as dup nonces"
    );
    assert!(unsol > 0, "unwanted data must resolve as unsolicited");
    let _ = relayed; // star traffic aggregates; the chain test below relays
                     // DAPES peers register the root prefix, so everything is routable and
                     // the FIB-drop outcome stays zero here (the scheduler benchmark's
                     // selective-FIB swarm exercises it; `cs` hits depend on cache timing).
    assert_eq!(fib, 0, "root-registered FIBs never drop by route");
    let _ = cs;
}

#[test]
fn chain_relays_take_the_decode_free_relay_path() {
    // A chain's pure forwarders see every downloader Interest as novel and
    // routable, so with `relay_patch` on (the default) they must resolve by
    // the decode-free relay path and actually transmit patched frames.
    let params = MatrixParams::default();
    let topology = Topology::Chain { relays: 1 };
    let mut sc = topology.build(1, &params);
    sc.run_until_complete(topology.deadline());
    let (mut relayed, mut suppressed, mut patched) = (0u64, 0u64, 0u64);
    for &id in sc.relays.iter() {
        let Some(p) = sc.world.stack::<dapes_core::peer::DapesPeer>(id) else {
            continue;
        };
        let s = p.stats();
        relayed += s.peek_relayed;
        suppressed += s.peek_relay_suppressed;
        patched += s.frames_relay_patched;
    }
    assert!(
        relayed > 0,
        "novel routable interests must resolve by the relay path (suppressed {suppressed})"
    );
    assert!(
        patched > 0,
        "relay decisions must translate into patched frame transmissions"
    );
}
