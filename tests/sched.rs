//! Scheduler-refactor equivalence suite.
//!
//! The timer wheel, the generation-tagged timer slab, the pooled command
//! buffers, and the name-first lazy decode path must all be *invisible* to
//! protocol behaviour: full DAPES scenario runs give bit-identical traces
//! (and independently satisfy the golden metrics) under every combination
//! of event-queue implementation and decode regime.

use dapes_netsim::prelude::*;
use dapes_testutil::prelude::*;

fn matrix_axes() -> (Vec<Topology>, Vec<u64>) {
    (
        vec![
            Topology::AdjacentPair,
            Topology::Chain { relays: 1 },
            Topology::Star { downloaders: 3 },
        ],
        vec![1, 3],
    )
}

fn trace_fingerprint(sc: &Scenario) -> (u64, u64, u64, u64, u64, Vec<Option<SimTime>>) {
    let s = sc.world.stats();
    (
        s.tx_frames,
        s.delivered,
        s.channel_losses,
        s.collision_drops,
        s.delivered_payload_bytes,
        sc.completion_times(),
    )
}

fn run_cell(
    topology: Topology,
    seed: u64,
    queue: QueueMode,
    lazy_peek: bool,
) -> (u64, u64, u64, u64, u64, Vec<Option<SimTime>>) {
    let params = MatrixParams {
        queue,
        config: dapes_core::config::DapesConfig {
            lazy_peek,
            ..Default::default()
        },
        ..MatrixParams::default()
    };
    let mut sc = topology.build(seed, &params);
    sc.run_until_complete(topology.deadline());
    assert_scenario(
        &format!(
            "{}/seed-{seed}/{queue:?}/lazy-{lazy_peek}",
            topology.label()
        ),
        &sc,
        &GoldenMetrics::default(),
    );
    trace_fingerprint(&sc)
}

#[test]
fn golden_traces_bit_identical_across_queue_modes() {
    let (topologies, seeds) = matrix_axes();
    for &topology in &topologies {
        for &seed in &seeds {
            assert_eq!(
                run_cell(topology, seed, QueueMode::Wheel, true),
                run_cell(topology, seed, QueueMode::Heap, true),
                "[{}/seed-{seed}] queue modes diverged",
                topology.label()
            );
        }
    }
}

#[test]
fn golden_traces_bit_identical_across_decode_regimes() {
    let (topologies, seeds) = matrix_axes();
    for &topology in &topologies {
        for &seed in &seeds {
            assert_eq!(
                run_cell(topology, seed, QueueMode::Wheel, true),
                run_cell(topology, seed, QueueMode::Wheel, false),
                "[{}/seed-{seed}] lazy peek changed the trace",
                topology.label()
            );
        }
    }
}

#[test]
fn legacy_corner_heap_and_eager_matches_the_optimized_stack() {
    // The fully-legacy corner (heap queue + eager decode) against the fully
    // optimized one, over a mobility-rich cell that exercises timers,
    // cancellations, retransmissions and overhearing together.
    let topology = Topology::PartitionedFerry;
    assert_eq!(
        run_cell(topology, 1, QueueMode::Wheel, true),
        run_cell(topology, 1, QueueMode::Heap, false),
        "optimized and legacy control planes diverged"
    );
}

#[test]
fn timer_slab_does_not_leak_across_a_full_scenario() {
    // DAPES peers arm and cancel pending-transmission timers constantly; a
    // completed run must leave only the steady-state timers (per-peer tick
    // and discovery beacons) armed, with slot allocation bounded by peak
    // concurrency — not by the tens of thousands of timers armed over the
    // run (the old `cancelled_timers` set retained cancelled ids forever).
    let params = MatrixParams::default();
    let topology = Topology::Star { downloaders: 3 };
    let mut sc = topology.build(1, &params);
    sc.run_until_complete(topology.deadline());
    // Keep the swarm ticking (discovery beacons, housekeeping, advert
    // timers) well past completion so timer volume dwarfs concurrency.
    let done = sc.world.now();
    sc.world.run_until(done + SimDuration::from_secs(120));
    let api_calls = sc.world.stats().api_calls;
    let live = sc.world.live_timers();
    let allocated = sc.world.timer_slots_allocated();
    assert!(
        api_calls > 1_000,
        "scenario must be timer-rich: {api_calls}"
    );
    assert!(
        live <= 4 * sc.world.node_count(),
        "live timers {live} exceed steady state for {} nodes",
        sc.world.node_count()
    );
    assert!(
        allocated <= 16 * sc.world.node_count(),
        "slot allocation {allocated} is volume-bound, not concurrency-bound"
    );
}

#[test]
fn lazy_peek_actually_resolves_frames_without_decode() {
    // Sanity that the fast path is exercised in a real scenario (not just
    // equivalent): star downloaders overhear each other's content interests
    // and answers, so duplicate nonces and CS hits must resolve by peek.
    let params = MatrixParams::default();
    let topology = Topology::Star { downloaders: 3 };
    let mut sc = topology.build(1, &params);
    sc.run_until_complete(topology.deadline());
    // Post-completion discovery chatter also feeds the fast path.
    let done = sc.world.now();
    sc.world.run_until(done + SimDuration::from_secs(60));
    let peeked: u64 = sc
        .downloaders
        .iter()
        .chain(sc.producers.iter())
        .filter_map(|&id| {
            sc.world
                .stack::<dapes_core::peer::DapesPeer>(id)
                .map(|p| p.stats().frames_peek_resolved)
        })
        .sum();
    assert!(peeked > 0, "no frame ever resolved from its peeked header");
}
