//! Property-based tests over the core data structures and wire formats.

// Explicit imports: the NDN forwarding `Strategy` trait in the umbrella
// prelude would shadow proptest's `Strategy`.
use dapes::prelude::{
    Bitmap, Component, ContentStore, Data, FaceId, Fib, Interest, Metadata, MetadataFormat, Name,
    StartPacket, TrustAnchor,
};
use dapes_crypto::merkle::MerkleTree;
use dapes_netsim::time::SimTime;
use proptest::prelude::*;

fn arb_component() -> impl Strategy<Value = Vec<u8>> {
    // Empty components are not representable in URI form (matching NDN's
    // URI conventions), so names are built from non-empty components.
    proptest::collection::vec(any::<u8>(), 1..24)
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_component(), 0..5).prop_map(|comps| {
        Name::from_components(comps.into_iter().map(Component::from_bytes).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn name_uri_round_trips(name in arb_name()) {
        let uri = name.to_string();
        prop_assert_eq!(Name::from_uri(&uri), name);
    }

    #[test]
    fn interest_wire_round_trips(
        name in arb_name(),
        nonce in any::<u32>(),
        lifetime in 1u64..100_000,
        cbp in any::<bool>(),
        mbf in any::<bool>(),
        params in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
    ) {
        let mut interest = Interest::new(name)
            .with_nonce(nonce)
            .with_lifetime_ms(lifetime)
            .with_can_be_prefix(cbp)
            .with_must_be_fresh(mbf);
        if let Some(p) = params {
            interest = interest.with_app_parameters(p);
        }
        prop_assert_eq!(Interest::decode(&interest.encode()).unwrap(), interest);
    }

    #[test]
    fn relay_byte_patch_equals_decode_decrement_encode(
        name in arb_name(),
        nonce in any::<u32>(),
        lifetime in 1u64..100_000,
        cbp in any::<bool>(),
        mbf in any::<bool>(),
        hops in proptest::option::of(any::<u8>()),
        params in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
    ) {
        // The decode-free relay path rewrites the single HopLimit byte on a
        // copied frame. That is only sound if the patched bytes are exactly
        // what the eager path's decode → decrement → re-encode would send,
        // for every encodable Interest.
        use dapes_ndn::packet::{Packet, PacketHeader, PeekedHopLimit};
        use dapes_netsim::payload::Payload;

        let mut interest = Interest::new(name)
            .with_nonce(nonce)
            .with_lifetime_ms(lifetime)
            .with_can_be_prefix(cbp)
            .with_must_be_fresh(mbf);
        if let Some(h) = hops {
            interest = interest.with_hop_limit(h);
        }
        if let Some(p) = params {
            interest = interest.with_app_parameters(p);
        }
        let frame = Payload::from(interest.encode());
        let PacketHeader::Interest(header) = Packet::peek_header(&frame).unwrap() else {
            panic!("interest frame peeked as data");
        };
        match header.hop_limit {
            PeekedHopLimit::Absent => {
                prop_assert_eq!(hops, None);
                // No hop limit: the relay forwards the frame unchanged, and
                // the eager path re-encodes the identical bytes.
                let mut eager = Interest::decode(frame.as_slice()).unwrap();
                prop_assert!(eager.decrement_hop_limit());
                prop_assert_eq!(eager.encode().as_slice(), frame.as_slice());
            }
            PeekedHopLimit::Patchable { value, offset } => {
                prop_assert_eq!(Some(value), hops);
                if value <= 1 {
                    // Exhausted: both paths commit state and transmit
                    // nothing.
                    let mut eager = Interest::decode(frame.as_slice()).unwrap();
                    prop_assert!(!eager.decrement_hop_limit());
                } else {
                    let mut patched = frame.as_slice().to_vec();
                    patched[offset] = value - 1;
                    let mut eager = Interest::decode(frame.as_slice()).unwrap();
                    prop_assert!(eager.decrement_hop_limit());
                    prop_assert_eq!(&eager.encode(), &patched);
                    // And the patched frame decodes back to the decremented
                    // Interest, so downstream hops agree too.
                    prop_assert_eq!(Interest::decode(&patched).unwrap(), eager);
                }
            }
            PeekedHopLimit::Opaque => {
                panic!("canonical encoder produced a non-patchable hop limit");
            }
        }
    }

    #[test]
    fn data_wire_round_trips_and_verifies(
        name in arb_name(),
        content in proptest::collection::vec(any::<u8>(), 0..512),
        freshness in 0u64..10_000,
    ) {
        let anchor = TrustAnchor::from_seed(b"prop");
        let key = anchor.keypair("p");
        let data = Data::new(name, content).with_freshness_ms(freshness).signed(&key);
        let back = Data::decode(&data.encode()).unwrap();
        prop_assert_eq!(&back, &data);
        prop_assert!(back.verify(&anchor));
    }

    #[test]
    fn corrupted_data_never_verifies(
        content in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<usize>(),
    ) {
        let anchor = TrustAnchor::from_seed(b"prop");
        let key = anchor.keypair("p");
        let data = Data::new(Name::from_uri("/c/f/0"), content).signed(&key);
        let mut wire = data.encode();
        let idx = flip % wire.len();
        wire[idx] ^= 0x01;
        // Either the packet no longer parses, or it fails verification;
        // flipped bits in pure padding of the TLV skeleton cannot occur
        // because every byte is load-bearing in this encoding.
        if let Ok(tampered) = Data::decode(&wire) {
            if tampered != data {
                prop_assert!(!tampered.verify(&anchor));
            }
        }
    }

    #[test]
    fn bitmap_wire_round_trips(len in 0usize..2000, seed in any::<u64>()) {
        let mut bm = Bitmap::new(len);
        let mut state = seed;
        for i in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state & 1 == 1 {
                bm.set(i);
            }
        }
        prop_assert_eq!(Bitmap::from_wire(&bm.to_wire()).unwrap(), bm);
    }

    #[test]
    fn bitmap_set_algebra(len in 1usize..512, seed in any::<u64>()) {
        let mut a = Bitmap::new(len);
        let mut b = Bitmap::new(len);
        let mut state = seed;
        for i in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            if state & 1 == 1 { a.set(i); }
            if state & 2 == 2 { b.set(i); }
        }
        // |A| = |A ∩ B| + |A \ B| decomposition.
        let a_minus_b = a.count_set_and_missing_from(&b);
        let b_minus_a = b.count_set_and_missing_from(&a);
        let mut union = a.clone();
        union.union_with(&b);
        prop_assert_eq!(union.count_set(), a.count_set() + b_minus_a);
        prop_assert_eq!(union.count_set(), b.count_set() + a_minus_b);
        prop_assert!(union.count_set() <= len);
    }

    #[test]
    fn merkle_proofs_sound(leaf_count in 1usize..64, probe in any::<usize>()) {
        let leaves: Vec<Vec<u8>> = (0..leaf_count).map(|i| format!("leaf-{i}").into_bytes()).collect();
        let tree = MerkleTree::from_leaves(leaves.iter().map(|v| v.as_slice()));
        let idx = probe % leaf_count;
        let proof = tree.prove(idx).unwrap();
        prop_assert!(proof.verify(&tree.root(), &leaves[idx]));
        // The same proof must not validate any other leaf.
        let other = (idx + 1) % leaf_count;
        if other != idx {
            prop_assert!(!proof.verify(&tree.root(), &leaves[other]));
        }
    }

    #[test]
    fn fib_lpm_matches_naive_scan(
        prefixes in proptest::collection::vec(proptest::collection::vec(0u8..4, 0..4), 1..12),
        query in proptest::collection::vec(0u8..4, 0..5),
    ) {
        let to_name = |parts: &[u8]| {
            Name::from_components(parts.iter().map(|p| Component::from_seq(*p as u64)).collect())
        };
        let mut fib = Fib::new();
        for (i, p) in prefixes.iter().enumerate() {
            fib.register(to_name(p), FaceId(i as u32));
        }
        let qn = to_name(&query);
        let got = fib.longest_prefix_match(&qn).first().copied();
        let naive = prefixes
            .iter()
            .enumerate()
            .filter(|(_, p)| to_name(p).is_prefix_of(&qn))
            .max_by_key(|(i, p)| (p.len(), std::cmp::Reverse(*i)))
            .map(|(i, _)| FaceId(i as u32));
        // With duplicate prefixes the FIB keeps both next hops; compare the
        // chosen prefix *length* instead of identity in that case.
        match (got, naive) {
            (Some(g), Some(n)) => {
                let glen = prefixes[g.0 as usize].len();
                let nlen = prefixes[n.0 as usize].len();
                prop_assert_eq!(glen, nlen);
            }
            (g, n) => prop_assert_eq!(g, n),
        }
    }

    #[test]
    fn metadata_body_round_trips(
        n_files in 1usize..6,
        packets in 1u32..20,
        size in 1u64..100_000,
    ) {
        let files: Vec<_> = (0..n_files)
            .map(|i| dapes_core::metadata::FileEntry {
                name: format!("file-{i}"),
                packet_count: packets,
                size_bytes: size,
                digests: Vec::new(),
                root: Some(dapes_crypto::sha256::sha256(&[i as u8])),
            })
            .collect();
        let meta = Metadata {
            format: MetadataFormat::MerkleRoots,
            producer: "prop".into(),
            packet_size: 1024,
            files,
        };
        prop_assert_eq!(Metadata::decode_body(&meta.encode_body()).unwrap(), meta);
    }

    #[test]
    fn rarity_order_is_permutation(
        total in 1usize..128,
        seed in any::<u64>(),
    ) {
        let rarity: Vec<u32> = (0..total).map(|i| ((seed >> (i % 48)) & 7) as u32).collect();
        let order = dapes_core::rpf::fetch_order(0..total, &rarity, StartPacket::Random, seed);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..total).collect::<Vec<_>>());
        // Rarity must be non-increasing along the order.
        for w in order.windows(2) {
            prop_assert!(rarity[w[0]] >= rarity[w[1]]);
        }
    }

    #[test]
    fn content_store_never_exceeds_capacity(
        capacity in 1usize..16,
        inserts in proptest::collection::vec(0u64..64, 0..64),
    ) {
        let mut cs = ContentStore::new(capacity);
        for (i, key) in inserts.iter().enumerate() {
            cs.insert(
                Data::new(Name::from_uri(&format!("/k/{key}")), vec![0; 8]),
                SimTime::from_secs(i as u64),
            );
            prop_assert!(cs.len() <= capacity);
        }
    }

    // --- signed control plane (crates/core/src/auth.rs, crypto signing) ---

    #[test]
    fn signature_bytes_round_trip_and_garbage_never_panics(
        producer in 0u8..8,
        message in proptest::collection::vec(any::<u8>(), 0..128),
        garbage in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        use dapes_crypto::signing::{Signature, Signer};
        let anchor = TrustAnchor::from_seed(b"prop-auth");
        let sig = anchor.keypair(&format!("peer-{producer}")).sign(&message);
        let bytes = sig.to_bytes();
        prop_assert_eq!(bytes.len(), Signature::WIRE_SIZE);
        prop_assert_eq!(Signature::from_bytes(&bytes), Some(sig));
        // Arbitrary bytes must parse-or-reject without panicking, and only
        // exactly-sized inputs may parse at all.
        let parsed = Signature::from_bytes(&garbage);
        if garbage.len() != Signature::WIRE_SIZE {
            prop_assert_eq!(parsed, None);
        }
    }

    #[test]
    fn sealed_envelope_round_trips_and_rejects_any_tamper(
        base in proptest::collection::vec(any::<u8>(), 4..96),
        ts in any::<u64>(),
        flip in any::<usize>(),
    ) {
        use dapes_core::auth;
        let anchor = TrustAnchor::from_seed(b"prop-auth");
        let key = anchor.keypair("peer-0");
        let sealed = auth::seal(&base, ts, &key);
        prop_assert_eq!(auth::strip(&sealed), Some(&base[..]));
        let (opened, got_ts, _) = auth::split(&sealed).unwrap();
        prop_assert_eq!(opened, &base[..]);
        prop_assert_eq!(got_ts, ts);
        prop_assert!(auth::open(&sealed, "peer-0", &anchor).is_ok());
        // Any single-bit corruption anywhere in the envelope must fail to
        // open (or fail to parse) — base, timestamp and tag are all bound.
        let mut bad = sealed.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 1;
        prop_assert!(auth::open(&bad, "peer-0", &anchor).is_err());
    }

    #[test]
    fn replay_guard_never_accepts_at_or_below_the_mark(
        stamps in proptest::collection::vec((0u8..4, 0u64..5_000_000), 1..200),
    ) {
        use dapes_core::auth::{ReplayGuard, ReplayVerdict};
        use dapes_crypto::signing::KeyId;
        use dapes_netsim::time::SimDuration;
        use std::collections::HashMap;

        // Random interleavings of four producers' timestamps against one
        // guard. The invariant under test: once a producer's high-water
        // mark is set, no timestamp at or below it is ever Fresh again,
        // and every Fresh verdict strictly raises the mark.
        let mut guard = ReplayGuard::new(
            16,
            SimDuration::from_secs(3600), // window wide open: isolate the mark logic
            SimDuration::from_secs(7200),
        );
        let now = SimTime::from_secs(1);
        let mut marks: HashMap<u8, u64> = HashMap::new();
        for (who, ts) in stamps {
            let verdict = guard.check(KeyId(who as u64), ts, now);
            match marks.get(&who) {
                Some(&mark) if ts < mark => prop_assert_eq!(verdict, ReplayVerdict::Replayed),
                Some(&mark) if ts == mark => prop_assert_eq!(verdict, ReplayVerdict::Duplicate),
                _ => {
                    prop_assert_eq!(verdict, ReplayVerdict::Fresh);
                    marks.insert(who, ts);
                }
            }
            prop_assert_eq!(guard.mark(KeyId(who as u64)), marks.get(&who).copied());
        }
    }

    #[test]
    fn monotonic_stamp_is_strictly_increasing(
        ticks in proptest::collection::vec(0u64..10_000, 1..100),
    ) {
        use dapes_core::auth::MonotonicStamp;
        // Even with a frozen (or repeating) clock the stamp must advance.
        let mut stamp = MonotonicStamp::default();
        let mut clock = 0u64;
        let mut last = None;
        for delta in ticks {
            clock += delta; // delta may be zero: clock can stall
            let ts = stamp.next(SimTime::from_micros(clock));
            if let Some(prev) = last {
                prop_assert!(ts > prev, "stamp {ts} did not advance past {prev}");
            }
            last = Some(ts);
        }
    }

    // --- raw TLV layer (crates/ndn/src/tlv.rs) ---

    #[test]
    fn tlv_varnum_round_trips(n in any::<u64>()) {
        use dapes_ndn::tlv::{write_varnum, TlvReader};
        let mut wire = Vec::new();
        write_varnum(&mut wire, n);
        let mut reader = TlvReader::new(&wire);
        prop_assert_eq!(reader.read_varnum().unwrap(), n);
        prop_assert!(reader.is_at_end());
    }

    #[test]
    fn tlv_write_read_round_trips(
        entries in proptest::collection::vec(
            (1u64..1_000_000, proptest::collection::vec(any::<u8>(), 0..32)),
            0..8,
        ),
    ) {
        use dapes_ndn::tlv::{write_tlv, TlvReader};
        let mut wire = Vec::new();
        for (typ, value) in &entries {
            write_tlv(&mut wire, *typ, value);
        }
        let mut reader = TlvReader::new(&wire);
        for (typ, value) in &entries {
            let (t, v) = reader.read_tlv().unwrap();
            prop_assert_eq!(t, *typ);
            prop_assert_eq!(v, value.as_slice());
        }
        prop_assert!(reader.is_at_end());
    }

    #[test]
    fn tlv_truncation_never_panics(
        typ in 1u64..100_000,
        value in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<usize>(),
    ) {
        use dapes_ndn::tlv::{write_tlv, TlvReader};
        let mut wire = Vec::new();
        write_tlv(&mut wire, typ, &value);
        let cut = cut % wire.len().max(1);
        // Any prefix must decode to an error, not a crash or a phantom TLV.
        let mut reader = TlvReader::new(&wire[..cut]);
        prop_assert!(reader.read_tlv().is_err());
    }

    // --- bitmap set/merge/count invariants (crates/core/src/bitmap.rs) ---

    #[test]
    fn bitmap_iterators_partition_the_domain(len in 0usize..600, seed in any::<u64>()) {
        let mut bm = Bitmap::new(len);
        let mut state = seed;
        for i in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            if state & 1 == 1 { bm.set(i); }
        }
        let set: Vec<usize> = bm.iter_set().collect();
        let missing: Vec<usize> = bm.iter_missing().collect();
        prop_assert_eq!(set.len(), bm.count_set());
        prop_assert_eq!(missing.len(), bm.count_missing());
        let mut all: Vec<usize> = set.iter().chain(missing.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..len).collect::<Vec<_>>());
        for &i in &set { prop_assert!(bm.get(i)); }
        for &i in &missing { prop_assert!(!bm.get(i)); }
    }

    #[test]
    fn bitmap_union_is_commutative_idempotent_and_monotone(
        len in 1usize..400,
        seed in any::<u64>(),
    ) {
        let mut a = Bitmap::new(len);
        let mut b = Bitmap::new(len);
        let mut state = seed;
        for i in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            if state & 1 == 1 { a.set(i); }
            if state & 2 == 2 { b.set(i); }
        }
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(&ab, &ba);
        // Idempotent: folding either operand in again changes nothing.
        let mut abb = ab.clone();
        abb.union_with(&b);
        prop_assert_eq!(&abb, &ab);
        // Monotone: the union dominates both operands everywhere.
        prop_assert!(ab.count_set() >= a.count_set());
        prop_assert!(ab.count_set() >= b.count_set());
        for i in a.iter_set() { prop_assert!(ab.get(i)); }
        for i in b.iter_set() { prop_assert!(ab.get(i)); }
        // Marginal coverage of either operand against the union is zero.
        prop_assert_eq!(a.count_set_and_missing_from(&ab), 0);
        prop_assert_eq!(b.count_set_and_missing_from(&ab), 0);
    }

    #[test]
    fn bitmap_set_then_clear_restores_counts(len in 1usize..256, probe in any::<usize>()) {
        let mut bm = Bitmap::new(len);
        let i = probe % len;
        prop_assert!(!bm.get(i));
        prop_assert!(bm.set(i), "first set reports a change");
        prop_assert!(!bm.set(i), "second set reports no change");
        prop_assert_eq!(bm.count_set(), 1);
        bm.clear(i);
        prop_assert!(!bm.get(i));
        prop_assert_eq!(bm.count_set(), 0);
        prop_assert_eq!(bm.count_missing(), len);
    }

    // --- Merkle proofs (crates/crypto/src/merkle.rs) ---

    #[test]
    fn merkle_proof_rejects_wrong_root_and_tampered_payload(
        leaf_count in 2usize..48,
        probe in any::<usize>(),
        flip in any::<u8>(),
    ) {
        let leaves: Vec<Vec<u8>> =
            (0..leaf_count).map(|i| format!("leaf-{i}").into_bytes()).collect();
        let tree = MerkleTree::from_leaves(leaves.iter().map(|v| v.as_slice()));
        let idx = probe % leaf_count;
        let proof = tree.prove(idx).unwrap();
        prop_assert!(proof.verify(&tree.root(), &leaves[idx]));
        // Against a different tree's root the same proof must fail.
        let other_tree = MerkleTree::from_leaves(
            (0..leaf_count).map(|i| format!("other-{i}")).collect::<Vec<_>>()
                .iter().map(|v| v.as_bytes()),
        );
        prop_assert!(!proof.verify(&other_tree.root(), &leaves[idx]));
        // A tampered payload must fail against the true root.
        let mut tampered = leaves[idx].clone();
        let pos = probe % tampered.len();
        tampered[pos] ^= flip | 1; // guaranteed to change at least one bit
        prop_assert!(!proof.verify(&tree.root(), &tampered));
    }

    #[test]
    fn merkle_verify_leaves_matches_root(leaf_count in 1usize..64) {
        let leaves: Vec<Vec<u8>> =
            (0..leaf_count).map(|i| format!("leaf-{i}").into_bytes()).collect();
        let tree = MerkleTree::from_leaves(leaves.iter().map(|v| v.as_slice()));
        let hashes: Vec<_> =
            leaves.iter().map(|l| dapes_crypto::merkle::leaf_hash(l)).collect();
        prop_assert!(MerkleTree::verify_leaves(&tree.root(), hashes.clone()));
        // Reordering two leaves must break verification.
        if leaf_count >= 2 {
            let mut swapped = hashes;
            swapped.swap(0, leaf_count - 1);
            prop_assert!(!MerkleTree::verify_leaves(&tree.root(), swapped));
        }
    }
}

mod cs_properties {
    //! Budgeted-Content-Store properties: every eviction policy must keep
    //! exact byte accounting and audit-clean indexes under arbitrary
    //! insert/lookup/reshape churn, serve everything that fits, and the
    //! chunked-file pipeline must round-trip through its catalog for any
    //! geometry.

    use dapes_core::pipeline::{Catalog, ChunkedFile};
    use dapes_ndn::cs::{ContentStore, CsBudget, EvictionPolicyKind};
    use dapes_ndn::name::Name;
    use dapes_ndn::packet::Data;
    use dapes_netsim::time::SimTime;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn every_policy_keeps_exact_accounting_under_churn(
            ops in proptest::collection::vec((0u8..8, 0u64..24, 0usize..96), 1..64),
            budget in 256usize..4096,
        ) {
            // Random inserts, lookups and budget reshapes (shrink, grow,
            // switch to a count cap, zero out) against every policy. After
            // every single op the audit must hold: tracked bytes equal the
            // sum of live entry sizes, no index key dangles, the policy
            // tracks exactly the live handles, and counters decompose.
            for policy in EvictionPolicyKind::ALL {
                let mut cs = ContentStore::with_budget(CsBudget::Bytes(budget), policy);
                let t = SimTime::from_secs(1);
                for &(op, key, size) in &ops {
                    let name = Name::from_uri(&format!("/p/{key}"));
                    match op {
                        0..=3 => cs.insert(Data::new(name, vec![0xAB; size]), t),
                        4 => {
                            if let Some(d) = cs.lookup(&name, false, false, t) {
                                prop_assert_eq!(d.name(), &name);
                            }
                        }
                        5 => {
                            if let Some(d) = cs.lookup(&name.prefix(1), true, false, t) {
                                prop_assert!(name.prefix(1).is_prefix_of(d.name()));
                            }
                        }
                        6 => cs.set_budget(CsBudget::Bytes(size * 8)),
                        _ => cs.set_budget(CsBudget::Count(key as usize / 4)),
                    }
                    prop_assert_eq!(cs.audit(), Ok(()));
                }
                let s = cs.stats();
                prop_assert_eq!(s.hits + s.misses, s.lookups, "{policy:?}");
            }
        }

        #[test]
        fn every_policy_serves_everything_that_fits(
            keys in proptest::collection::vec(0u64..64, 1..32),
        ) {
            // With a budget the whole working set fits under, eviction
            // policy must be unobservable: every inserted name hits.
            for policy in EvictionPolicyKind::ALL {
                let mut cs = ContentStore::with_budget(CsBudget::Bytes(1 << 20), policy);
                let t = SimTime::from_secs(1);
                for &key in &keys {
                    cs.insert(
                        Data::new(Name::from_uri(&format!("/p/{key}")), vec![1; 16]),
                        t,
                    );
                }
                for &key in &keys {
                    let name = Name::from_uri(&format!("/p/{key}"));
                    let d = cs.lookup(&name, false, false, t);
                    prop_assert!(d.is_some(), "{policy:?} lost /p/{key}");
                    prop_assert_eq!(d.unwrap().name(), &name);
                }
                let s = cs.stats();
                prop_assert_eq!(s.misses, 0, "{policy:?}");
                prop_assert_eq!(s.hits, keys.len() as u64, "{policy:?}");
                prop_assert_eq!(cs.audit(), Ok(()));
            }
        }

        #[test]
        fn chunk_pipeline_round_trips_for_any_geometry(
            size in 0usize..5000,
            chunk_size in 1usize..512,
            probe in any::<usize>(),
        ) {
            let col = Name::from_uri("/prop-col-1533783192");
            let f = ChunkedFile::synthetic(&col, "f", size, chunk_size);
            let catalog = Catalog::decode(f.catalog_data().content()).unwrap();
            prop_assert_eq!(catalog, f.catalog());
            prop_assert_eq!(catalog.size_bytes as usize, size);
            prop_assert_eq!(catalog.chunk_count as usize, f.chunk_count());
            // A probed segment verifies against the catalog; its proof
            // must not validate any other segment's payload.
            let idx = probe % f.chunk_count();
            let seg = f.segment(idx).unwrap();
            let proof = f.prove(idx).unwrap();
            prop_assert!(ChunkedFile::verify_segment(&catalog, &proof, idx, &seg));
            let other = (idx + 1) % f.chunk_count();
            if other != idx {
                let wrong = f.segment(other).unwrap();
                prop_assert!(!ChunkedFile::verify_segment(&catalog, &proof, idx, &wrong));
            }
            // Reassembling every chunk and re-chunking reproduces the
            // exact Merkle root: the pipeline is lossless.
            let mut rebuilt = Vec::new();
            for i in 0..f.chunk_count() {
                rebuilt.extend_from_slice(f.chunk(i).unwrap());
            }
            prop_assert_eq!(rebuilt.len(), size);
            let g = ChunkedFile::from_bytes(&col, "f", rebuilt, chunk_size);
            prop_assert_eq!(g.root(), f.root());
        }
    }
}

mod sched_properties {
    //! Scheduler-refactor properties: the timer wheel must pop the exact
    //! `(time, seq)` sequence a min-heap pops, the world's two queue modes
    //! must fire the same timers in the same order under random arm/cancel
    //! interleavings, and the name-first header peek must agree with the
    //! full decode.

    use dapes_netsim::payload::Payload;
    use dapes_netsim::prelude::*;
    use dapes_netsim::wheel::{TimerWheel, WheelEntry};
    use proptest::prelude::*;
    use std::any::Any;
    use std::collections::BinaryHeap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn wheel_pops_identical_time_seq_sequence_to_heap(
            ops in proptest::collection::vec(
                (any::<bool>(), 0u64..(1u64 << 38)), 1..300),
        ) {
            let mut wheel = TimerWheel::new();
            let mut heap: BinaryHeap<std::cmp::Reverse<WheelEntry<u64>>> =
                BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for (push, delta) in ops {
                if push || heap.is_empty() {
                    seq += 1;
                    let t = now + delta;
                    wheel.push(t, seq, seq);
                    heap.push(std::cmp::Reverse(WheelEntry { time: t, seq, item: seq }));
                } else {
                    let expect = heap.pop().unwrap().0;
                    let got = wheel.pop().unwrap();
                    prop_assert_eq!((got.time, got.seq), (expect.time, expect.seq));
                    now = expect.time;
                }
            }
            while let Some(std::cmp::Reverse(expect)) = heap.pop() {
                let got = wheel.pop().unwrap();
                prop_assert_eq!((got.time, got.seq), (expect.time, expect.seq));
            }
            prop_assert!(wheel.pop().is_none());
        }

        #[test]
        fn queue_modes_fire_identical_timer_sequences_under_cancel_churn(
            script in proptest::collection::vec(
                (0u8..4, 1u64..5_000), 4..120),
        ) {
            // A stack that replays `script` — each fired step arms, arms-
            // then-cancels, cancels an older timer, or idles — and records
            // every fire. Both queue modes must record the same sequence.
            #[derive(Debug)]
            struct Scripted {
                script: Vec<(u8, u64)>,
                step: usize,
                armed: Vec<TimerHandle>,
                fired: Vec<(u64, u64)>,
            }
            impl NetStack for Scripted {
                fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                    ctx.set_timer(SimDuration::from_micros(1), 0);
                }
                fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: &Frame) {}
                fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
                    self.fired.push((ctx.now.as_micros(), token));
                    let Some(&(op, delay)) = self.script.get(self.step) else {
                        return;
                    };
                    self.step += 1;
                    let d = SimDuration::from_micros(delay);
                    match op {
                        0 => self.armed.push(ctx.set_timer(d, self.step as u64)),
                        1 => {
                            let h = ctx.set_timer(d, self.step as u64);
                            ctx.cancel_timer(h);
                        }
                        2 => {
                            if let Some(h) = self.armed.pop() {
                                ctx.cancel_timer(h);
                            }
                        }
                        _ => {}
                    }
                    // Keep the chain alive so every scripted op runs.
                    ctx.set_timer(SimDuration::from_micros(7), 0);
                }
                fn as_any(&self) -> &dyn Any { self }
                fn as_any_mut(&mut self) -> &mut dyn Any { self }
            }
            let run = |queue: QueueMode| {
                let mut w = World::new(WorldConfig {
                    exec: ExecProfile::default().with_queue(queue),
                    ..WorldConfig::default()
                });
                let a = w.add_node(
                    Box::new(Stationary::new(Point::new(0.0, 0.0))),
                    Box::new(Scripted {
                        script: script.clone(),
                        step: 0,
                        armed: Vec::new(),
                        fired: Vec::new(),
                    }),
                );
                w.run_until(SimTime::from_secs(600));
                (
                    w.stack::<Scripted>(a).unwrap().fired.clone(),
                    w.live_timers(),
                )
            };
            let (wheel_fired, wheel_live) = run(QueueMode::Wheel);
            let (heap_fired, heap_live) = run(QueueMode::Heap);
            prop_assert_eq!(&wheel_fired, &heap_fired);
            prop_assert!(!wheel_fired.is_empty());
            // No-leak property: once every event has popped, no slot stays
            // claimed, in either mode.
            prop_assert_eq!(wheel_live, 0);
            prop_assert_eq!(heap_live, 0);
        }

        #[test]
        fn delivery_event_modes_fire_identical_sequences_under_random_swarms(
            placements in proptest::collection::vec(
                (0.0f64..300.0, 0.0f64..300.0, 1u32..6, 5u64..40), 2..10),
            seed in any::<u64>(),
            loss in 0u32..4,
        ) {
            // A beaconing swarm with channel loss: every RNG draw (loss,
            // backoff, jitter) and every callback must land identically
            // whether deliveries ride one batched arrival event per
            // transmission or one event per receiver.
            #[derive(Debug, Default)]
            struct Beacon {
                beacons: u32,
                interval_ms: u64,
                heard: Vec<(u64, NodeId, u64)>,
                fired: Vec<u64>,
                outcomes: Vec<(u64, bool)>,
            }
            impl NetStack for Beacon {
                fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                    if self.beacons > 0 {
                        ctx.set_timer(SimDuration::from_millis(self.interval_ms), 1);
                    }
                }
                fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &Frame) {
                    self.heard.push((frame.seq, frame.src, ctx.now.as_micros()));
                }
                fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
                    self.fired.push(ctx.now.as_micros());
                    ctx.send_frame(vec![0x5A; 64], FrameKind(9), token, SimDuration::ZERO);
                    self.beacons -= 1;
                    if self.beacons > 0 {
                        ctx.set_timer(SimDuration::from_millis(self.interval_ms), 1);
                    }
                }
                fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>, outcome: TxOutcome) {
                    self.outcomes.push((ctx.now.as_micros(), outcome.collided));
                }
                fn as_any(&self) -> &dyn Any { self }
                fn as_any_mut(&mut self) -> &mut dyn Any { self }
            }
            let run = |delivery_events: DeliveryEvents| {
                let mut cfg = WorldConfig {
                    seed,
                    exec: ExecProfile::default().with_delivery_events(delivery_events),
                    ..WorldConfig::default()
                };
                cfg.phy.loss_rate = loss as f64 * 0.1;
                let mut w = World::new(cfg);
                let ids: Vec<NodeId> = placements
                    .iter()
                    .map(|&(x, y, beacons, interval_ms)| {
                        w.add_node(
                            Box::new(Stationary::new(Point::new(x, y))),
                            Box::new(Beacon {
                                beacons,
                                interval_ms,
                                ..Beacon::default()
                            }),
                        )
                    })
                    .collect();
                w.run_until(SimTime::from_secs(5));
                let per_node: Vec<_> = ids
                    .iter()
                    .map(|&id| {
                        let b = w.stack::<Beacon>(id).unwrap();
                        (b.heard.clone(), b.fired.clone(), b.outcomes.clone())
                    })
                    .collect();
                let s = w.stats();
                (
                    per_node,
                    (
                        s.tx_frames,
                        s.delivered,
                        s.channel_losses,
                        s.collision_drops,
                        s.mac_deferrals,
                        s.api_calls,
                    ),
                )
            };
            let (batched_nodes, batched_stats) = run(DeliveryEvents::Batched);
            let (perrecv_nodes, perrecv_stats) = run(DeliveryEvents::PerReceiver);
            prop_assert_eq!(batched_stats, perrecv_stats);
            prop_assert_eq!(batched_nodes, perrecv_nodes);
        }

        #[test]
        fn peek_header_agrees_with_full_interest_decode(
            name in super::arb_name(),
            nonce in any::<u32>(),
            lifetime in 1u64..100_000,
            cbp in any::<bool>(),
            mbf in any::<bool>(),
            params in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..256)),
        ) {
            use dapes_ndn::packet::{Interest, Packet, PacketHeader};
            let mut interest = Interest::new(name.clone())
                .with_nonce(nonce)
                .with_lifetime_ms(lifetime)
                .with_can_be_prefix(cbp)
                .with_must_be_fresh(mbf);
            if let Some(p) = params {
                interest = interest.with_app_parameters(p);
            }
            let wire = Payload::from(interest.encode());
            match Packet::peek_header(&wire) {
                Ok(PacketHeader::Interest(h)) => {
                    prop_assert_eq!(h.nonce, nonce);
                    prop_assert_eq!(h.lifetime_ms, lifetime);
                    prop_assert_eq!(h.can_be_prefix, cbp);
                    prop_assert_eq!(h.must_be_fresh, mbf);
                    prop_assert!(name.wire_value_eq(h.name_wire));
                    prop_assert_eq!(h.name_wire, &name.to_wire_value()[..]);
                    prop_assert_eq!(&h.to_name(&wire).unwrap(), &name);
                }
                other => prop_assert!(false, "unexpected peek: {:?}", other),
            }
        }

        #[test]
        fn peek_header_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            use dapes_ndn::packet::Packet;
            // Must reject or classify, never panic; truncation of a valid
            // packet is covered by the unit suite.
            let _ = Packet::peek_header(&Payload::from(bytes));
        }
    }
}

mod fault_properties {
    //! Fault-injection properties: a crash/restart at a *random* simulated
    //! time during a transfer — before, during or after the download is
    //! active — must still end in 100 % completion, and the whole faulted
    //! run must stay bit-identical across the two event-queue backends.

    use dapes_netsim::prelude::*;
    use dapes_testutil::prelude::*;
    use proptest::prelude::*;

    /// One faulted run; the returned tuple is the determinism fingerprint.
    fn faulted_run(
        seed: u64,
        dist: f64,
        crash_us: u64,
        restart_us: u64,
        queue: QueueMode,
    ) -> (bool, u64, u64, Vec<Option<SimTime>>) {
        let mut sc = ScenarioBuilder::new(seed)
            .exec(ExecProfile::default().with_queue(queue))
            .collection(2, 16 * 1024)
            .producer_at(0.0, 0.0)
            .downloader_at(dist, 0.0)
            .downloader_at(0.0, dist)
            .faults([FaultProfile::CrashRestartDownloader {
                index: 0,
                crash: SimTime::from_micros(crash_us),
                restart: SimTime::from_micros(restart_us),
            }])
            .build();
        let done = sc.run_until_complete(SimTime::from_secs(240));
        let s = sc.world.stats();
        (
            done,
            s.tx_frames,
            s.stale_events_suppressed,
            sc.completion_times(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn crash_restart_completes_and_is_queue_mode_invariant(
            seed in 0u64..1000,
            dist in 10.0f64..40.0,
            crash_us in 200_000u64..2_500_000,
            gap_us in 500_000u64..5_000_000,
        ) {
            let restart_us = crash_us + gap_us;
            let wheel = faulted_run(seed, dist, crash_us, restart_us, QueueMode::Wheel);
            prop_assert!(
                wheel.0,
                "every downloader must complete after the restart (seed {seed})"
            );
            let heap = faulted_run(seed, dist, crash_us, restart_us, QueueMode::Heap);
            prop_assert_eq!(&wheel, &heap, "queue modes diverged under faults");
        }
    }
}
