//! Sharded-engine equivalence suite.
//!
//! The sharded multi-core world ships behind the same `ExecProfile` knob
//! as every other execution strategy, so it carries the same burden of
//! proof: with `cores = 1` it must be *bit-identical* to the sequential
//! engine (it delegates to a single inner `World`), and with more cores
//! it must stay deterministic per `(seed, cores)` and metric-equivalent
//! within the tolerance documented on `dapes_netsim::shard` — cross-
//! border frames land at window boundaries instead of exact finish
//! instants, and each shard draws its own RNG stream.

use dapes_netsim::prelude::*;
use dapes_testutil::prelude::*;
use proptest::prelude::*;

fn matrix_axes() -> (Vec<Topology>, Vec<u64>) {
    (
        vec![
            Topology::AdjacentPair,
            Topology::Chain { relays: 1 },
            Topology::Star { downloaders: 3 },
        ],
        vec![1, 3],
    )
}

type Fingerprint = (u64, u64, u64, u64, u64, Vec<Option<SimTime>>);

fn sequential_fingerprint(sc: &Scenario) -> Fingerprint {
    let s = sc.world.stats();
    (
        s.tx_frames,
        s.delivered,
        s.channel_losses,
        s.collision_drops,
        s.delivered_payload_bytes,
        sc.completion_times(),
    )
}

fn sharded_fingerprint(sc: &ShardedScenario) -> Fingerprint {
    let s = sc.world.stats();
    (
        s.tx_frames,
        s.delivered,
        s.channel_losses,
        s.collision_drops,
        s.delivered_payload_bytes,
        sc.completion_times(),
    )
}

/// The golden gate: one core on the sharded engine IS the sequential
/// engine. Every cell of the smoke matrix must produce a bit-identical
/// trace — same frames, same losses, same byte counts, same completion
/// instants — while the sequential side independently passes the golden
/// metric asserts.
#[test]
fn cores_one_is_bit_identical_to_the_sequential_engine() {
    let (topologies, seeds) = matrix_axes();
    let params = MatrixParams::default();
    for &topology in &topologies {
        for &seed in &seeds {
            let label = format!("{}/seed-{seed}", topology.label());
            let mut seq = topology.build(seed, &params);
            seq.run_until_complete(topology.deadline());
            assert_scenario(&label, &seq, &GoldenMetrics::default());

            let mut sharded = topology.build_sharded(seed, &params);
            sharded.run_until_complete(topology.deadline());
            let stats = sharded.world.stats();
            assert_eq!(stats.shards, 1, "[{label}] default profile is one shard");
            assert_eq!(
                stats.border_tx_exported, 0,
                "[{label}] a single shard has no border"
            );
            assert_eq!(
                sharded_fingerprint(&sharded),
                sequential_fingerprint(&seq),
                "[{label}] cores=1 must delegate bit-identically"
            );
        }
    }
}

/// A chain long enough to straddle shard bands must actually exercise the
/// border machinery: frames exported, frames injected, windows synced —
/// and the transfer must still complete.
#[test]
fn a_multi_core_chain_crosses_shard_borders_and_completes() {
    // Chain nodes sit at x = 0, 51, 102, 153 on the 300 m field: four
    // shards put the band lines at 75/150/225, so the relay chain spans
    // three bands and every Interest/Data exchange crosses at least one.
    let topology = Topology::Chain { relays: 2 };
    let params = MatrixParams {
        exec: ExecProfile::default().with_cores(4),
        ..MatrixParams::default()
    };
    let mut sc = topology.build_sharded(1, &params);
    let done = sc.run_until_complete(topology.deadline());
    assert!(done, "the sharded chain transfer must complete");
    let s = sc.world.stats();
    assert_eq!(s.shards, 4);
    assert!(s.sync_windows > 0, "lockstep windows must have advanced");
    assert!(s.lookahead_micros > 0, "the lookahead must be recorded");
    assert!(
        s.border_tx_exported > 0,
        "a band-straddling chain must export border frames"
    );
    assert!(
        s.border_rx_injected > 0,
        "exported frames must be injected into neighbour shards"
    );
}

/// Runs the sequential smoke matrix once and compares each multi-core
/// sweep against it: every cell must finish all downloads, reproduce
/// itself bit-identically on a re-run (the matrix's determinism check),
/// and stay within the documented metric tolerance of the sequential
/// cell — frame counts within 2x either way, completion within the
/// deadline and no earlier than half the sequential time.
#[test]
fn multi_core_cells_complete_deterministically_and_stay_metric_close() {
    let sequential = ScenarioMatrix::new().seeds([1, 2]).run();
    for cores in [2usize, 4, 8] {
        let cells = ScenarioMatrix::new()
            .seeds([1, 2])
            .params(MatrixParams {
                exec: ExecProfile::default().with_cores(cores),
                ..MatrixParams::default()
            })
            .check_determinism(true)
            .run();
        assert_eq!(cells.len(), sequential.len());
        for (cell, seq) in cells.iter().zip(&sequential) {
            let label = format!("{}/seed-{}/cores-{cores}", cell.topology.label(), cell.seed);
            assert_eq!(
                cell.completed, cell.downloaders,
                "[{label}] every downloader must complete on the sharded engine"
            );
            let ratio = cell.tx_frames as f64 / seq.tx_frames.max(1) as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "[{label}] frame count drifted {ratio:.2}x from the sequential run \
                 ({} vs {})",
                cell.tx_frames,
                seq.tx_frames
            );
            let (sharded_at, seq_at) = (
                cell.finished_at.expect("all complete").as_micros(),
                seq.finished_at.expect("all complete").as_micros(),
            );
            // Cross-border hops quantize to window boundaries and shards
            // draw independent RNG streams, so completion can move in
            // either direction — but never below half or past double the
            // sequential instant (plus a window of slack for near-zero
            // cells).
            let slack = 2 * cell.topology.deadline().as_micros() / 100;
            assert!(
                sharded_at <= 2 * seq_at + slack && 2 * sharded_at + slack >= seq_at,
                "[{label}] completion drifted out of tolerance: {sharded_at} us \
                 vs sequential {seq_at} us"
            );
        }
    }
}

/// The fault axis rides onto the sharded engine unchanged: a downloader
/// crash/restart mid-transfer must still end in full completion, with the
/// same per-(seed, cores) determinism.
#[test]
fn crash_restart_cells_recover_on_the_sharded_engine() {
    let topology = Topology::Star { downloaders: 3 };
    let params = MatrixParams {
        exec: ExecProfile::default().with_cores(2),
        faults: vec![FaultProfile::CrashRestartDownloader {
            index: 0,
            crash: SimTime::from_secs(1),
            restart: SimTime::from_secs(4),
        }],
        ..MatrixParams::default()
    };
    let deadline = topology.deadline_with_faults(&params.faults);
    let run = || {
        let mut sc = topology.build_sharded(1, &params);
        let done = sc.run_until_complete(deadline);
        (done, sharded_fingerprint(&sc))
    };
    let (done, fp) = run();
    assert!(done, "every downloader must complete after the restart");
    let (done2, fp2) = run();
    assert!(done2);
    assert_eq!(fp, fp2, "faulted sharded runs must be deterministic");
}

mod sharded_properties {
    //! Property: for *random* seeds and band-straddling placements, every
    //! core count in {2, 4, 8} completes the transfer, reproduces itself
    //! bit-identically, and lands within the metric tolerance of the
    //! sequential run of the same scenario.

    use super::*;

    /// One two-downloader transfer straddling the x = 150 field midline
    /// (and the 75/37.5 band lines of the deeper sweeps), on `cores`
    /// shards. Returns the completion flag and the determinism
    /// fingerprint.
    fn straddling_run(seed: u64, dx: f64, cores: usize) -> (bool, Fingerprint) {
        let mut sc = ScenarioBuilder::new(seed)
            .exec(ExecProfile::default().with_cores(cores))
            .collection(2, 16 * 1024)
            .producer_at(150.0 - dx, 150.0)
            .downloader_at(150.0 + dx, 150.0)
            .downloader_at(150.0, 150.0 - dx)
            .build_sharded();
        let done = sc.run_until_complete(SimTime::from_secs(240));
        (done, sharded_fingerprint(&sc))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn every_core_count_completes_deterministically_within_tolerance(
            seed in 0u64..1000,
            dx in 10.0f64..28.0,
        ) {
            // The sequential reference: the same builder on one core.
            let (seq_done, seq) = straddling_run(seed, dx, 1);
            prop_assert!(seq_done, "sequential reference failed (seed {seed})");
            for cores in [2usize, 4, 8] {
                let (done, fp) = straddling_run(seed, dx, cores);
                prop_assert!(done, "cores={cores} did not complete (seed {seed})");
                let (done2, fp2) = straddling_run(seed, dx, cores);
                prop_assert!(done2);
                prop_assert_eq!(
                    &fp, &fp2,
                    "cores={} must be deterministic (seed {})", cores, seed
                );
                let ratio = fp.0 as f64 / seq.0.max(1) as f64;
                prop_assert!(
                    (0.5..=2.0).contains(&ratio),
                    "cores={} frame count drifted {:.2}x (seed {})",
                    cores, ratio, seed
                );
            }
        }
    }
}
