//! Cross-crate integration tests: full protocol stacks on the simulator,
//! exercising the public API through the `dapes-testutil` scenario harness.

use dapes::prelude::*;
use dapes_testutil::prelude::*;

#[test]
fn dapes_swarm_with_mobility_loss_and_forwarders_completes() {
    let mut sc = ScenarioBuilder::new(31)
        .range(70.0)
        .loss(0.10) // the paper's default channel loss — the point of the test
        .collection(2, 8 * 1024)
        .producer_at(150.0, 150.0)
        .mobile_downloaders(5)
        .mobile_pure_forwarders(3)
        .build();
    let done = sc.run_until_complete(SimTime::from_secs(1200));
    assert!(done, "mobile swarm should complete under loss");
    // Verified data only.
    assert_scenario("mobile-swarm", &sc, &GoldenMetrics::with_min_packets(16));
}

#[test]
fn swarm_on_a_byte_budgeted_lru_store_still_completes() {
    // The memory-budgeted Content Store is a drop-in for the count-capped
    // one: a swarm whose caches are byte-budgeted and LRU-managed must
    // still complete, stay within budget, and keep exact accounting.
    use dapes_ndn::cs::EvictionPolicyKind;
    let budget = 16 * 1024;
    let cfg = DapesConfig {
        cs_budget_bytes: Some(budget),
        cs_policy: EvictionPolicyKind::Lru,
        ..DapesConfig::default()
    };
    let mut sc = ScenarioBuilder::new(7)
        .collection(2, 8 * 1024)
        .config(cfg)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .downloader_at(0.0, 20.0)
        .build();
    let done = sc.run_until_complete(SimTime::from_secs(600));
    assert!(done, "budgeted swarm should complete");
    for &node in sc.downloaders.iter().chain(sc.producers.iter()) {
        let cs = sc.peer(node).expect("peer").content_store();
        assert_eq!(cs.policy_kind(), EvictionPolicyKind::Lru);
        assert!(
            cs.resident_bytes() <= budget,
            "node {node:?} exceeded its byte budget"
        );
        cs.audit().expect("exact accounting after the run");
        let s = cs.stats();
        assert_eq!(s.hits + s.misses, s.lookups, "counters decompose");
    }
}

#[test]
fn tampered_metadata_is_rejected_end_to_end() {
    // A forged producer (different trust anchor) serves a same-named
    // collection; the downloader must reject its metadata signature. With
    // signed adverts off the forged announcement is believed, so the
    // rejection happens at the data plane — the pre-authentication
    // behaviour this test pins down.
    let cfg = DapesConfig {
        signed_adverts: false,
        ..DapesConfig::default()
    };
    let mut sc = ScenarioBuilder::new(5)
        .collection(1, 4 * 1024)
        .config(cfg)
        .peer_with_anchor(
            PeerRole::Producer,
            MobilityPreset::at(0.0, 0.0),
            rogue_anchor(),
        )
        .downloader_at(20.0, 0.0)
        .build();
    let done = sc.run_until_complete(SimTime::from_secs(60));
    assert!(!done, "forged collection must never complete");
    let peer = sc.peer(sc.downloaders[0]).expect("peer");
    assert!(
        peer.stats().verify_failures > 0,
        "signature rejections should be recorded"
    );
}

#[test]
fn forged_producer_is_rejected_at_the_announcement_layer() {
    // Same forged producer, default config: the signed control plane
    // rejects the announcement itself, so the downloader never learns of
    // the collection, never spends Interests on it, and no tampered bytes
    // reach the data plane.
    let mut sc = ScenarioBuilder::new(5)
        .collection(1, 4 * 1024)
        .peer_with_anchor(
            PeerRole::Producer,
            MobilityPreset::at(0.0, 0.0),
            rogue_anchor(),
        )
        .downloader_at(20.0, 0.0)
        .build();
    let done = sc.run_until_complete(SimTime::from_secs(60));
    assert!(!done, "forged collection must never complete");
    let stats = sc.peer(sc.downloaders[0]).expect("peer").stats().clone();
    assert!(
        stats.adverts_rejected_bad_sig > 0,
        "forged announcements should be rejected at the control plane"
    );
    assert_eq!(
        stats.verify_failures, 0,
        "no tampered data should ever be requested"
    );
}

#[test]
fn tampered_segments_never_enter_the_content_store() {
    // A fast tamperer answers the downloader's content Interests with
    // unsigned junk before the producer's jittered reply arrives. The junk
    // must be rejected *before* Content Store insertion: a cached tampered
    // segment would be re-served to later Interests under the caching
    // peer's own authority, laundering the tamper. After the run, every
    // cached Data under the collection namespace must still verify.
    use dapes_core::adversary::AdversaryKind;
    let mut sc = ScenarioBuilder::new(7)
        .collection(1, 8 * 1024)
        .producer_at(0.0, 0.0)
        .downloader_at(48.0, 0.0)
        .adversary_at(AdversaryKind::SegmentTamperer, 90.0, 0.0)
        .build();
    assert!(
        sc.run_until_complete(SimTime::from_secs(120)),
        "the transfer must survive the tamperer"
    );
    assert!(
        sc.defense_total(|s| s.segments_rejected_tamper) > 0,
        "the tamperer must have been heard and rejected"
    );
    let collection = sc.collection.clone();
    let anchor = sc.anchor.clone();
    for &node in sc.downloaders.iter().chain(&sc.producers) {
        let peer = sc.peer(node).expect("honest peer");
        for idx in 0..collection.total_packets() {
            let name = collection
                .index()
                .packet_name(collection.name(), idx)
                .expect("packet name");
            if let Some(cached) = peer.content_store().lookup_exact(&name) {
                assert!(
                    cached.verify(&anchor),
                    "node {node:?} cached an unverifiable segment {name}"
                );
            }
        }
    }
}

#[test]
fn matrix_sweeps_the_adversarial_axis() {
    // The scenario matrix gains an adversarial axis: the same topology
    // cells, now with attacker nodes present, must stay green (completion
    // plus the golden invariants, hostile frame kinds classified).
    use dapes_core::adversary::AdversaryKind;
    let cells = ScenarioMatrix::new()
        .topologies([Topology::AdjacentPair, Topology::Star { downloaders: 2 }])
        .seeds([1, 2])
        .params(MatrixParams {
            adversaries: vec![AdversaryKind::NoiseFlooder, AdversaryKind::SpoofForger],
            ..MatrixParams::default()
        })
        .run();
    assert_eq!(cells.len(), 4);
    for cell in &cells {
        assert_eq!(
            cell.completed,
            cell.downloaders,
            "{}/seed-{} failed under attack",
            cell.topology.label(),
            cell.seed
        );
    }
}

#[test]
fn benign_run_with_axis_off_matches_the_pre_auth_trace() {
    // With `signed_adverts: false` the authenticated control plane must be
    // byte-invisible: no envelopes on the wire, no screening, no RNG
    // draws — the exact trace the repo produced before the axis existed.
    // The fingerprint below was captured from the pre-auth tree (commit
    // bc59c87) running this identical scenario; equality pins the benign
    // wire format bit-for-bit.
    let run = || {
        let cfg = DapesConfig {
            signed_adverts: false,
            ..DapesConfig::default()
        };
        let mut sc = ScenarioBuilder::new(42)
            .collection(1, 4096)
            .config(cfg)
            .producer_at(0.0, 0.0)
            .downloader_at(20.0, 0.0)
            .build();
        assert!(sc.run_until_complete(SimTime::from_secs(120)));
        let s = sc.world.stats();
        (s.tx_frames, s.tx_payload_bytes, s.delivered)
    };
    let fingerprint = run();
    assert_eq!(fingerprint, run(), "axis-off run must be deterministic");
    assert_eq!(
        fingerprint,
        (
            PRE_AUTH_TX_FRAMES,
            PRE_AUTH_TX_PAYLOAD_BYTES,
            PRE_AUTH_DELIVERED
        ),
        "axis-off trace diverged from the pre-auth wire format"
    );
}

// Captured from the pre-auth tree (commit bc59c87) for the seed-42
// adjacent-pair scenario above; see `benign_run_with_axis_off_matches_the_pre_auth_trace`.
const PRE_AUTH_TX_FRAMES: u64 = 16;
const PRE_AUTH_TX_PAYLOAD_BYTES: u64 = 5634;
const PRE_AUTH_DELIVERED: u64 = 16;

#[test]
fn repo_pattern_one_transmission_serves_two_peers() {
    // The paper's scenario-2 insight: requests from either peer satisfy
    // both, so the producer answers co-located downloads with barely more
    // Data transmissions than a single download — PIT aggregation merges
    // concurrent requests and each broadcast is overheard by both peers.
    // `packets_served` isolates the producer's data plane; total frame
    // counts would be dominated by the per-peer control chatter (and by
    // loss-pattern luck: retransmission noise across seeds is larger than
    // the effect). 10% loss as in the original formulation, summed over
    // three seeds.
    let served_with_downloaders = |extra: bool| {
        [9, 10, 11]
            .into_iter()
            .map(|seed| {
                let mut b = ScenarioBuilder::new(seed)
                    .collection(1, 16 * 1024)
                    .loss(0.10)
                    .producer_at(0.0, 0.0)
                    .downloader_at(20.0, 0.0);
                if extra {
                    b = b.downloader_at(0.0, 20.0);
                }
                let mut sc = b.build();
                sc.run_until_complete(SimTime::from_secs(300));
                assert!(sc.all_complete());
                sc.peer(sc.producers[0]).unwrap().stats().packets_served
            })
            .sum::<u64>()
    };
    let single = served_with_downloaders(false);
    let double = served_with_downloaders(true);
    assert!(
        (double as f64) < 1.9 * single as f64,
        "two co-located downloads ({double} packets served) should cost the \
         producer less than 2x one download ({single} packets served): \
         broadcast data and PIT aggregation let one transmission serve both \
         peers"
    );
}

#[test]
fn scenario_matrix_sweeps_topologies_and_seeds() {
    // The harness's acceptance matrix: four topologies x three seeds, every
    // cell green under the golden invariants (completion, zero verification
    // failures, full frame classification).
    let cells = ScenarioMatrix::new()
        .topologies([
            Topology::AdjacentPair,
            Topology::Chain { relays: 1 },
            Topology::Star { downloaders: 3 },
            Topology::PartitionedFerry,
        ])
        .seeds([1, 2, 3])
        .run();
    assert_eq!(cells.len(), 12);
    for cell in &cells {
        assert_eq!(
            cell.completed,
            cell.downloaders,
            "{}/seed-{} left downloads incomplete",
            cell.topology.label(),
            cell.seed
        );
        assert!(cell.tx_frames > 0);
        assert!(cell.finished_at.is_some());
    }
    // The same matrix re-run must be bit-identical: the harness promises
    // deterministic scenarios, not just passing ones.
    let again = ScenarioMatrix::new()
        .topologies([Topology::AdjacentPair, Topology::Chain { relays: 1 }])
        .seeds([1, 2, 3])
        .check_determinism(true)
        .run();
    assert_eq!(again.len(), 6);
}

#[test]
fn umbrella_prelude_exposes_all_layers() {
    // Compile-time API check: one item per crate through the prelude.
    let _ = Name::from_uri("/x");
    let _ = Bitmap::new(4);
    let _ = TrustAnchor::from_seed(b"x");
    let _ = WorldConfig::default();
    let _ = SwarmSpec::paper_default();
    let _ = DapesConfig::default();
}

#[test]
fn bench_scenario_api_runs_one_tiny_trial() {
    // The seed's original parameters (2 stationary repositories 150 m
    // apart at 80 m range, one mobile downloader, no intermediates, 300 s)
    // only completed for RNG-stream-specific walks and went flaky when the
    // RNG backend changed; this configuration matches the in-crate
    // `dapes-bench` scenario tests, which complete on mobility rather than
    // luck.
    use dapes_bench::{run_trial, Protocol, ScenarioParams};
    let params = ScenarioParams {
        range: 80.0,
        n_files: 1,
        file_size: 2048,
        packet_size: 1024,
        seed: 3,
        max_sim: SimTime::from_secs(1500),
        stationary: 2,
        mobile_downloaders: 2,
        intermediates: 1,
        pure_forwarders: 1,
    };
    let r = run_trial(&Protocol::Dapes(Box::default()), &params);
    assert_eq!(r.downloaders, 3);
    assert!(
        r.completed >= 2,
        "expected most downloaders to finish, got {}/{}",
        r.completed,
        r.downloaders
    );
}

#[test]
fn crashed_downloader_resumes_after_restart_without_refetching() {
    // The downloader crashes mid-transfer (the fault-free run finishes at
    // ~1.3 s, so 0.8 s lands inside it), loses its stack, and restarts
    // cold except for the salvage the harness hands back. It must finish
    // the collection after the reboot, skip every segment it already held,
    // and never put a resumed segment back on the air.
    let mut sc = ScenarioBuilder::new(9)
        .collection(4, 32 * 1024)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .faults([FaultProfile::CrashRestartDownloader {
            index: 0,
            crash: SimTime::from_micros(800_000),
            restart: SimTime::from_secs(3),
        }])
        .build();
    let done = sc.run_until_complete(SimTime::from_secs(120));
    assert!(done, "restarted downloader should still complete");
    let world = sc.world.stats().clone();
    assert_eq!(world.node_crashes, 1);
    assert_eq!(world.node_restarts, 1);
    // The fault interrupted a live transfer and the resume did real work:
    // held segments were skipped, and none of them was re-requested.
    let skipped = sc.defense_total(|s| s.resumed_segments_skipped);
    assert!(
        skipped > 0,
        "resume should skip segments held at crash time"
    );
    assert_eq!(
        sc.defense_total(|s| s.resumed_refetch),
        0,
        "a resumed downloader must not re-fetch a held segment"
    );
    assert_scenario("crash-restart", &sc, &GoldenMetrics::with_min_packets(16));
}

#[test]
fn partitioned_downloader_backs_off_gives_up_and_recovers_on_heal() {
    // The downloader is cut off mid-transfer for 30 s — longer than the
    // full backoff ladder (0.5 s doubling to the 4 s cap over max_retx=8
    // tries ≈ 23.5 s), so its outstanding Interests must be abandoned, and
    // the give-up accounted. After the heal the refill path re-requests
    // what is still missing and the transfer completes.
    let mut sc = ScenarioBuilder::new(9)
        .collection(4, 32 * 1024)
        .producer_at(0.0, 0.0)
        .downloader_at(20.0, 0.0)
        .faults([FaultProfile::IsolateDownloader {
            index: 0,
            cut: SimTime::from_micros(700_000),
            heal: SimTime::from_secs(30),
        }])
        .build();
    let done = sc.run_until_complete(SimTime::from_secs(180));
    assert!(done, "download should complete after the partition heals");
    let world = sc.world.stats().clone();
    assert_eq!(world.partitions_cut, 1);
    assert_eq!(world.partitions_healed, 1);
    assert!(
        world.partition_drops > 0,
        "in-range frames must be dropped while the link is cut"
    );
    // Counter decomposition: the outage forced retransmissions, and the
    // backoff ladder ran dry at least once before the heal.
    let stats = sc.peer(sc.downloaders[0]).expect("peer").stats().clone();
    assert!(stats.retransmissions > 0, "outage should force retx");
    assert!(
        stats.retx_give_ups > 0,
        "a 30 s outage should exhaust the backoff ladder"
    );
    assert_scenario("partition-heal", &sc, &GoldenMetrics::with_min_packets(16));
}
