//! Cross-crate integration tests: full protocol stacks on the simulator,
//! exercising the public API through the `dapes-testutil` scenario harness.

use dapes::prelude::*;
use dapes_testutil::prelude::*;

#[test]
fn dapes_swarm_with_mobility_loss_and_forwarders_completes() {
    let mut sc = ScenarioBuilder::new(31)
        .range(70.0)
        .loss(0.10) // the paper's default channel loss — the point of the test
        .collection(2, 8 * 1024)
        .producer_at(150.0, 150.0)
        .mobile_downloaders(5)
        .mobile_pure_forwarders(3)
        .build();
    let done = sc.run_until_complete(SimTime::from_secs(1200));
    assert!(done, "mobile swarm should complete under loss");
    // Verified data only.
    assert_scenario("mobile-swarm", &sc, &GoldenMetrics::with_min_packets(16));
}

#[test]
fn tampered_metadata_is_rejected_end_to_end() {
    // A forged producer (different trust anchor) serves a same-named
    // collection; the downloader must reject its metadata signature.
    let mut sc = ScenarioBuilder::new(5)
        .collection(1, 4 * 1024)
        .peer_with_anchor(
            PeerRole::Producer,
            MobilityPreset::at(0.0, 0.0),
            rogue_anchor(),
        )
        .downloader_at(20.0, 0.0)
        .build();
    let done = sc.run_until_complete(SimTime::from_secs(60));
    assert!(!done, "forged collection must never complete");
    let peer = sc.peer(sc.downloaders[0]).expect("peer");
    assert!(
        peer.stats().verify_failures > 0,
        "signature rejections should be recorded"
    );
}

#[test]
fn repo_pattern_one_transmission_serves_two_peers() {
    // The paper's scenario-2 insight: requests from either peer satisfy
    // both, so the producer answers co-located downloads with barely more
    // Data transmissions than a single download — PIT aggregation merges
    // concurrent requests and each broadcast is overheard by both peers.
    // `packets_served` isolates the producer's data plane; total frame
    // counts would be dominated by the per-peer control chatter (and by
    // loss-pattern luck: retransmission noise across seeds is larger than
    // the effect). 10% loss as in the original formulation, summed over
    // three seeds.
    let served_with_downloaders = |extra: bool| {
        [9, 10, 11]
            .into_iter()
            .map(|seed| {
                let mut b = ScenarioBuilder::new(seed)
                    .collection(1, 16 * 1024)
                    .loss(0.10)
                    .producer_at(0.0, 0.0)
                    .downloader_at(20.0, 0.0);
                if extra {
                    b = b.downloader_at(0.0, 20.0);
                }
                let mut sc = b.build();
                sc.run_until_complete(SimTime::from_secs(300));
                assert!(sc.all_complete());
                sc.peer(sc.producers[0]).unwrap().stats().packets_served
            })
            .sum::<u64>()
    };
    let single = served_with_downloaders(false);
    let double = served_with_downloaders(true);
    assert!(
        (double as f64) < 1.9 * single as f64,
        "two co-located downloads ({double} packets served) should cost the \
         producer less than 2x one download ({single} packets served): \
         broadcast data and PIT aggregation let one transmission serve both \
         peers"
    );
}

#[test]
fn scenario_matrix_sweeps_topologies_and_seeds() {
    // The harness's acceptance matrix: four topologies x three seeds, every
    // cell green under the golden invariants (completion, zero verification
    // failures, full frame classification).
    let cells = ScenarioMatrix::new()
        .topologies([
            Topology::AdjacentPair,
            Topology::Chain { relays: 1 },
            Topology::Star { downloaders: 3 },
            Topology::PartitionedFerry,
        ])
        .seeds([1, 2, 3])
        .run();
    assert_eq!(cells.len(), 12);
    for cell in &cells {
        assert_eq!(
            cell.completed,
            cell.downloaders,
            "{}/seed-{} left downloads incomplete",
            cell.topology.label(),
            cell.seed
        );
        assert!(cell.tx_frames > 0);
        assert!(cell.finished_at.is_some());
    }
    // The same matrix re-run must be bit-identical: the harness promises
    // deterministic scenarios, not just passing ones.
    let again = ScenarioMatrix::new()
        .topologies([Topology::AdjacentPair, Topology::Chain { relays: 1 }])
        .seeds([1, 2, 3])
        .check_determinism(true)
        .run();
    assert_eq!(again.len(), 6);
}

#[test]
fn umbrella_prelude_exposes_all_layers() {
    // Compile-time API check: one item per crate through the prelude.
    let _ = Name::from_uri("/x");
    let _ = Bitmap::new(4);
    let _ = TrustAnchor::from_seed(b"x");
    let _ = WorldConfig::default();
    let _ = SwarmSpec::paper_default();
    let _ = DapesConfig::default();
}

#[test]
fn bench_scenario_api_runs_one_tiny_trial() {
    // The seed's original parameters (2 stationary repositories 150 m
    // apart at 80 m range, one mobile downloader, no intermediates, 300 s)
    // only completed for RNG-stream-specific walks and went flaky when the
    // RNG backend changed; this configuration matches the in-crate
    // `dapes-bench` scenario tests, which complete on mobility rather than
    // luck.
    use dapes_bench::{run_trial, Protocol, ScenarioParams};
    let params = ScenarioParams {
        range: 80.0,
        n_files: 1,
        file_size: 2048,
        packet_size: 1024,
        seed: 3,
        max_sim: SimTime::from_secs(1500),
        stationary: 2,
        mobile_downloaders: 2,
        intermediates: 1,
        pure_forwarders: 1,
    };
    let r = run_trial(&Protocol::Dapes(DapesConfig::default()), &params);
    assert_eq!(r.downloaders, 3);
    assert!(
        r.completed >= 2,
        "expected most downloaders to finish, got {}/{}",
        r.completed,
        r.downloaders
    );
}
