//! Cross-crate integration tests: full protocol stacks on the simulator,
//! exercising the public API exactly as the examples do.

use dapes::prelude::*;
use std::rc::Rc;

fn anchor() -> TrustAnchor {
    TrustAnchor::from_seed(b"integration")
}

fn collection(files: usize, size: usize) -> Rc<Collection> {
    Rc::new(Collection::build(CollectionSpec {
        name: Name::from_uri("/damaged-bridge-1533783192"),
        files: (0..files)
            .map(|i| FileSpec::new(format!("file-{i}"), size))
            .collect(),
        packet_size: 1024,
        format: MetadataFormat::MerkleRoots,
        producer: "resident-a".into(),
    }))
}

#[test]
fn dapes_swarm_with_mobility_loss_and_forwarders_completes() {
    let mut world = World::new(WorldConfig {
        range: 70.0,
        seed: 31,
        ..WorldConfig::default()
    });
    let col = collection(2, 8 * 1024);
    let mut producer = DapesPeer::new(0, DapesConfig::default(), anchor(), WantPolicy::Nothing);
    producer.add_production(col.clone());
    world.add_node(
        Box::new(Stationary::new(Point::new(150.0, 150.0))),
        Box::new(producer),
    );
    let mut downloaders = Vec::new();
    for i in 1..6u32 {
        let peer = DapesPeer::new(i, DapesConfig::default(), anchor(), WantPolicy::Everything);
        downloaders.push(world.add_node(
            Box::new(RandomDirection::new(Point::new(40.0 * i as f64, 100.0))),
            Box::new(peer),
        ));
    }
    for i in 6..9u32 {
        world.add_node(
            Box::new(RandomDirection::new(Point::new(30.0 * i as f64, 200.0))),
            Box::new(DapesPeer::pure_forwarder(i, DapesConfig::default(), anchor())),
        );
    }
    let done = world.run_until_cond(SimTime::from_secs(1200), |w| {
        downloaders
            .iter()
            .all(|&d| w.stack::<DapesPeer>(d).is_some_and(|p| p.downloads_complete()))
    });
    assert!(done, "mobile swarm should complete under loss");
    // Verified data only.
    for &d in &downloaders {
        let p = world.stack::<DapesPeer>(d).expect("peer");
        assert_eq!(p.stats().verify_failures, 0);
        assert!(p.stats().packets_verified >= 16);
    }
}

#[test]
fn tampered_metadata_is_rejected_end_to_end() {
    // A forged producer (different trust anchor) serves a same-named
    // collection; the downloader must reject its metadata signature.
    let good_anchor = anchor();
    let evil_anchor = TrustAnchor::from_seed(b"evil");
    let col = collection(1, 4 * 1024);

    let mut world = World::new(WorldConfig {
        range: 60.0,
        seed: 5,
        phy: PhyConfig {
            loss_rate: 0.0,
            ..PhyConfig::default()
        },
        ..WorldConfig::default()
    });
    // The *evil* producer signs with the wrong anchor.
    let mut evil = DapesPeer::new(0, DapesConfig::default(), evil_anchor, WantPolicy::Nothing);
    evil.add_production(col.clone());
    world.add_node(
        Box::new(Stationary::new(Point::new(0.0, 0.0))),
        Box::new(evil),
    );
    let dl = world.add_node(
        Box::new(Stationary::new(Point::new(20.0, 0.0))),
        Box::new(DapesPeer::new(1, DapesConfig::default(), good_anchor, WantPolicy::Everything)),
    );
    let done = world.run_until_cond(SimTime::from_secs(60), |w| {
        w.stack::<DapesPeer>(dl).is_some_and(|p| p.downloads_complete())
    });
    assert!(!done, "forged collection must never complete");
    let peer = world.stack::<DapesPeer>(dl).expect("peer");
    assert!(
        peer.stats().verify_failures > 0,
        "signature rejections should be recorded"
    );
}

#[test]
fn repo_pattern_one_transmission_serves_two_peers() {
    // The paper's scenario-2 insight: requests from either peer satisfy
    // both, so co-located downloads cost fewer transmissions than double a
    // single download.
    let single = {
        let mut world = World::new(WorldConfig { range: 60.0, seed: 9, ..WorldConfig::default() });
        let col = collection(1, 16 * 1024);
        let mut prod = DapesPeer::new(0, DapesConfig::default(), anchor(), WantPolicy::Nothing);
        prod.add_production(col);
        world.add_node(Box::new(Stationary::new(Point::new(0.0, 0.0))), Box::new(prod));
        let d = world.add_node(
            Box::new(Stationary::new(Point::new(20.0, 0.0))),
            Box::new(DapesPeer::new(1, DapesConfig::default(), anchor(), WantPolicy::Everything)),
        );
        world.run_until_cond(SimTime::from_secs(300), |w| {
            w.stack::<DapesPeer>(d).is_some_and(|p| p.downloads_complete())
        });
        world.stats().tx_frames
    };
    let double = {
        let mut world = World::new(WorldConfig { range: 60.0, seed: 9, ..WorldConfig::default() });
        let col = collection(1, 16 * 1024);
        let mut prod = DapesPeer::new(0, DapesConfig::default(), anchor(), WantPolicy::Nothing);
        prod.add_production(col);
        world.add_node(Box::new(Stationary::new(Point::new(0.0, 0.0))), Box::new(prod));
        let d1 = world.add_node(
            Box::new(Stationary::new(Point::new(20.0, 0.0))),
            Box::new(DapesPeer::new(1, DapesConfig::default(), anchor(), WantPolicy::Everything)),
        );
        let d2 = world.add_node(
            Box::new(Stationary::new(Point::new(0.0, 20.0))),
            Box::new(DapesPeer::new(2, DapesConfig::default(), anchor(), WantPolicy::Everything)),
        );
        world.run_until_cond(SimTime::from_secs(300), |w| {
            [d1, d2]
                .iter()
                .all(|&d| w.stack::<DapesPeer>(d).is_some_and(|p| p.downloads_complete()))
        });
        world.stats().tx_frames
    };
    assert!(
        (double as f64) < 1.9 * single as f64,
        "two co-located downloads ({double} frames) should cost less than \
         2x one download ({single} frames): broadcast data and PIT \
         aggregation let one transmission serve both peers"
    );
}

#[test]
fn umbrella_prelude_exposes_all_layers() {
    // Compile-time API check: one item per crate through the prelude.
    let _ = Name::from_uri("/x");
    let _ = Bitmap::new(4);
    let _ = TrustAnchor::from_seed(b"x");
    let _ = WorldConfig::default();
    let _ = SwarmSpec::paper_default();
    let _ = DapesConfig::default();
}

#[test]
fn bench_scenario_api_runs_one_tiny_trial() {
    use dapes_bench::{run_trial, Protocol, ScenarioParams};
    let params = ScenarioParams {
        range: 80.0,
        n_files: 1,
        file_size: 2048,
        packet_size: 1024,
        seed: 3,
        max_sim: SimTime::from_secs(300),
        stationary: 2,
        mobile_downloaders: 1,
        intermediates: 0,
        pure_forwarders: 0,
    };
    let r = run_trial(&Protocol::Dapes(DapesConfig::default()), &params);
    assert_eq!(r.downloaders, 2);
    assert!(r.completed >= 1);
}
