//! Zero-copy hot-path equivalence suite.
//!
//! The spatial grid and the shared-buffer refactor must be *invisible* to
//! protocol behaviour: the grid returns the same neighbors as the original
//! brute-force scan at every instant of every scenario, and full runs give
//! bit-identical traces (and therefore identical golden metrics) in both
//! delivery modes.

use dapes_netsim::prelude::*;
use dapes_testutil::prelude::*;

fn matrix_axes() -> (Vec<Topology>, Vec<u64>) {
    (
        vec![
            Topology::AdjacentPair,
            Topology::Chain { relays: 1 },
            Topology::Star { downloaders: 3 },
        ],
        vec![1, 2, 3],
    )
}

/// Cross-mode cells: one stationary, one scripted-mobility, one mobile-swarm
/// topology, so the grid's segment registration is exercised by every
/// mobility model.
fn mobility_axes() -> Vec<(Topology, u64)> {
    vec![
        (Topology::Chain { relays: 2 }, 5),
        (Topology::PartitionedFerry, 1),
        (
            Topology::MobileSwarm {
                downloaders: 2,
                forwarders: 2,
            },
            2,
        ),
    ]
}

fn trace_fingerprint(sc: &Scenario) -> (u64, u64, u64, u64, u64, Vec<Option<SimTime>>) {
    let s = sc.world.stats();
    (
        s.tx_frames,
        s.delivered,
        s.channel_losses,
        s.collision_drops,
        s.delivered_payload_bytes,
        sc.completion_times(),
    )
}

#[test]
fn grid_neighbors_match_brute_force_across_matrix() {
    let (topologies, seeds) = matrix_axes();
    let params = MatrixParams::default();
    for &topology in &topologies {
        for &seed in &seeds {
            let mut sc = topology.build(seed, &params);
            // Sample neighbor queries at several instants while the
            // scenario actually runs (mobility segments change, MACs queue,
            // peers move), not just at t = 0.
            for step in 0..6u64 {
                sc.world.run_until(SimTime::from_secs(step * 20));
                for i in 0..sc.world.node_count() as u32 {
                    let n = NodeId(i);
                    assert_eq!(
                        sc.world.neighbors_of(n),
                        sc.world.neighbors_of_brute(n),
                        "[{}/seed-{seed}] node {n} diverged at t={}s",
                        topology.label(),
                        step * 20
                    );
                }
            }
        }
    }
}

#[test]
fn grid_neighbors_match_brute_force_under_mobility() {
    for (topology, seed) in mobility_axes() {
        let params = MatrixParams::default();
        let mut sc = topology.build(seed, &params);
        for step in 1..=10u64 {
            sc.world.run_until(SimTime::from_secs(step * 30));
            for i in 0..sc.world.node_count() as u32 {
                let n = NodeId(i);
                assert_eq!(
                    sc.world.neighbors_of(n),
                    sc.world.neighbors_of_brute(n),
                    "[{}/seed-{seed}] node {n} diverged at t={}s",
                    topology.label(),
                    step * 30
                );
            }
        }
    }
}

#[test]
fn golden_traces_bit_identical_across_delivery_modes() {
    let (topologies, seeds) = matrix_axes();
    for &topology in &topologies {
        for &seed in &seeds {
            let run = |delivery: DeliveryMode| {
                let params = MatrixParams {
                    exec: ExecProfile::default().with_delivery(delivery),
                    ..MatrixParams::default()
                };
                let mut sc = topology.build(seed, &params);
                sc.run_until_complete(topology.deadline());
                // Both modes must independently satisfy the golden metrics…
                assert_scenario(
                    &format!("{}/seed-{seed}/{delivery:?}", topology.label()),
                    &sc,
                    &GoldenMetrics::default(),
                );
                trace_fingerprint(&sc)
            };
            // …and produce bit-identical traces.
            assert_eq!(
                run(DeliveryMode::Grid),
                run(DeliveryMode::BruteForce),
                "[{}/seed-{seed}] delivery modes diverged",
                topology.label()
            );
        }
    }
}
